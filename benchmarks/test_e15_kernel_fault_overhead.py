"""E15 -- fault injection on the kernel tier: faulted vs plain kernel runs.

The kernel tier applies a fault plan without leaving array land: the
compiled :class:`~repro.faults.session.FaultSession` exposes per-round
edge-fate arrays, and the faulted driver
(:mod:`repro.congest.kernels.faults`) replays the hooked round loop as
whole-graph scatter/fold operations over an explicit columnar mailbox.
That structure is necessarily heavier than the plain kernels' analytic
traffic accounting (which never materialises messages at all), so a faulted
kernel run cannot be free -- but the overhead must stay a small constant
factor, comparable to the 1.3-6.4x envelope E12 measured for the batched
engine's fault path, rather than degenerating into per-message costs.

Measured here at kernel scale (n=10^4, the CSR-direct path): wall time for
the plain kernel, for a kernel run under an *empty* plan (pure driver
overhead, byte-identical results enforced), and under real lossy/chaos
plans (driver plus fault work, with the dropped/delayed traffic reported
alongside).  The recorded table is
``benchmarks/results/E15_kernel_faults.txt``.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro import RunSpec, execute
from repro.analysis.tables import format_table
from repro.faults import FAULT_MODELS, FaultPlan
from repro.graphs.large_scale import (
    large_grid,
    large_preferential_attachment,
    random_integer_weights,
)

#: Timing repetitions per (instance, plan); the minimum is reported.
REPEATS = 3


def _time_run(csr, algorithm, plan):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = execute(
            RunSpec(
                graph=csr, algorithm=algorithm, alpha=csr.alpha,
                engine="kernel", faults=plan, seed=0,
            )
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure(name, csr, algorithm, plan_name, plan):
    plain_time, plain = _time_run(csr, algorithm, None)
    faulty_time, faulty = _time_run(csr, algorithm, plan)
    assert faulty.engine_used == "kernel", name  # never the fallback tier
    if plan.is_empty():
        # The empty plan is pure driver plumbing: results must not move a
        # bit relative to the analytic fast path.
        assert faulty.outputs == plain.outputs, name
        assert pickle.dumps(faulty.metrics) == pickle.dumps(plain.metrics), name
    return {
        "instance": name,
        "plan": plan_name,
        "n": csr.n,
        "m": csr.m,
        "rounds": faulty.rounds,
        "dropped": faulty.metrics.total_dropped_messages,
        "delayed": faulty.metrics.total_delayed_messages,
        "kernel_s": round(plain_time, 4),
        "faulted_s": round(faulty_time, 4),
        "overhead_x": round(faulty_time / plain_time, 2),
    }


def _run(bench_seed):
    rows = []

    grid = large_grid(100, 100)
    ba = random_integer_weights(
        large_preferential_attachment(10_000, attachment=4, seed=bench_seed),
        1, 30, seed=11,
    )

    for name, csr, algorithm in (
        ("grid 100x100", grid, "deterministic"),
        ("BA n=10^4 weighted", ba, "weighted"),
    ):
        for plan_name, plan in (
            ("empty", FaultPlan()),
            ("lossy10", FAULT_MODELS["lossy10"].materialize(csr, bench_seed)),
            ("chaos", FAULT_MODELS["chaos"].materialize(csr, bench_seed)),
        ):
            rows.append(_measure(name, csr, algorithm, plan_name, plan))
    return rows


@pytest.mark.bench
def test_e15_kernel_fault_overhead(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)

    # The faulted driver materialises messages the analytic path never
    # builds, so a constant factor is expected -- the ceiling guards against
    # a regression to per-message costs while staying safe on noisy CI
    # machines (E12's batched-engine envelope was 1.3-6.4x).
    for row in rows:
        assert row["overhead_x"] <= 12.0, row

    # Fault work happened where a fault plan was active.
    assert all(row["dropped"] > 0 for row in rows if row["plan"] != "empty")

    record_experiment(
        "E15_kernel_faults",
        "Faulted kernel runs vs the plain analytic kernels at n=10^4 (CSR path)",
        format_table(rows),
    )
