"""E18 -- sharded-tier scaling: partitioned kernels vs one-process kernels.

Infrastructure claims for the fourth execution tier
(:mod:`repro.congest.sharded`), measured on streamed BA instances:

* **byte parity under timing** -- at n=10^5 and 10^6 the sharded runs are
  ``result_bytes``-identical to the kernel engine for every shard count
  measured (the tier's contract; the exhaustive grid lives in
  ``tests/congest/test_sharded_parity.py``);
* **10^7-node end-to-end** -- a 10^7-node streamed BA graph solves through
  ``run_sharded_program`` with ``spawn`` workers, and the per-round metrics
  (rounds, messages, bits) equal a single-process kernel run of the same
  instance executed in its own subprocess;
* **per-shard memory** -- each spawn worker's peak RSS (``VmHWM``; see
  :func:`repro.obs.metrics.peak_rss_kib`) stays strictly below the
  single-process kernel subprocess's, which is the point of sharding: no
  process ever holds the whole graph's per-node state.

Wall-clock context: this box schedules all shards on the CPUs it has, so
sharded wall time is kernel wall time plus partition/transport overhead --
the tier buys memory headroom and a multi-machine-shaped execution, not
single-host speedup.  The numbers land in
``benchmarks/results/E18_sharded.txt``; the companion ingestion-at-scale
measurement writes ``E18_ingest.txt``.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro import RunSpec, Session
from repro.analysis.tables import format_table
from repro.graphs.large_scale import large_preferential_attachment
from repro.run.result import result_bytes

#: Shard counts for the parity/scaling table (the headline uses 4).
SHARD_COUNTS = (2, 4)

HEADLINE_N = 10_000_000
HEADLINE_SHARDS = 4


class _ShardRssTracer:
    """Collect per-shard ``maxrss_kib`` from ``sharded_shard`` events."""

    enabled = True

    def __init__(self):
        self.shard_rss_kib = []

    def emit(self, record):
        pass

    def event(self, name, **fields):
        if name == "sharded_shard":
            self.shard_rss_kib.append(int(fields["maxrss_kib"]))


def _kernel_child(csr, queue):
    """Run the kernel tier in a fresh process; report cost + metrics."""
    from repro.obs.metrics import peak_rss_kib

    start = time.perf_counter()
    result = Session().run(RunSpec(graph=csr, algorithm="forest", engine="kernel"))
    queue.put(
        {
            "wall_s": time.perf_counter() - start,
            "maxrss_kib": peak_rss_kib(),
            "rounds": result.rounds,
            "weight": result.weight,
            "metrics": result.metrics.to_dict(),
        }
    )


def _compare_scale(n, bench_seed):
    """Kernel vs sharded at one size: wall clock + byte parity per count."""
    csr = large_preferential_attachment(n, attachment=3, seed=bench_seed)
    session = Session()
    spec = RunSpec(graph=csr, algorithm="forest", engine="kernel")
    start = time.perf_counter()
    kernel_result = session.run(spec)
    kernel_s = time.perf_counter() - start
    expected = result_bytes(kernel_result)
    row = {
        "instance": f"BA n={n} m=3",
        "rounds": kernel_result.rounds,
        "kernel_s": round(kernel_s, 2),
    }
    for shards in SHARD_COUNTS:
        sharded_spec = RunSpec(
            graph=csr, algorithm="forest", engine="sharded", shards=shards
        )
        start = time.perf_counter()
        sharded_result = session.run(sharded_spec)
        row[f"sharded{shards}_s"] = round(time.perf_counter() - start, 2)
        assert sharded_result.engine_used == "sharded"
        assert result_bytes(sharded_result) == expected, (n, shards)
    return row


def _headline(bench_seed):
    """The 10^7-node end-to-end run, kernel subprocess vs spawn shards."""
    from repro.congest.kernels.grid import grid_from_csr
    from repro.congest.network import shared_config
    from repro.congest.sharded.engine import run_sharded_program
    from repro.congest.simulator import (
        DEFAULT_BANDWIDTH_WORDS,
        DEFAULT_MAX_ROUNDS,
        resolve_budget_and_limit,
    )
    from repro.core.trees import ForestMDSAlgorithm

    build_start = time.perf_counter()
    csr = large_preferential_attachment(
        HEADLINE_N, attachment=3, seed=bench_seed
    )
    build_s = time.perf_counter() - build_start

    # The single-process comparator runs in its own spawn subprocess, so
    # its ru_maxrss is this workload alone -- same deal the workers get.
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.SimpleQueue()
    child = ctx.Process(target=_kernel_child, args=(csr, queue))
    child.start()
    kernel = queue.get()
    child.join()

    forest = ForestMDSAlgorithm()
    config = shared_config(csr.n, csr.max_degree, csr.alpha or 3, None, True)
    budget, limit = resolve_budget_and_limit(
        forest, csr, DEFAULT_BANDWIDTH_WORDS, DEFAULT_MAX_ROUNDS
    )
    tracer = _ShardRssTracer()
    start = time.perf_counter()
    outputs, metrics = run_sharded_program(
        grid_from_csr(csr),
        config,
        forest,
        budget=budget,
        limit=limit,
        strict=True,
        seed=0,
        shards=HEADLINE_SHARDS,
        start_method="spawn",
        tracer=tracer,
    )
    sharded_s = time.perf_counter() - start

    # Round-for-round metrics parity with the kernel subprocess (the full
    # result_bytes contract is pinned at the smaller sizes above and in
    # tier-1; at 10^7 the metrics stream is the affordable equivalent).
    sharded_metrics = metrics.to_dict()
    sharded_metrics["engine_used"] = None
    kernel_metrics = dict(kernel["metrics"])
    kernel_metrics["engine_used"] = None
    assert metrics.rounds == kernel["rounds"]
    assert sharded_metrics == kernel_metrics
    assert len(outputs) == csr.n
    return {
        "n": csr.n,
        "m": csr.m,
        "build_s": round(build_s, 1),
        "kernel": kernel,
        "sharded_s": sharded_s,
        "shard_rss_kib": tracer.shard_rss_kib,
        "rounds": metrics.rounds,
    }


@pytest.mark.bench
def test_e18_sharded_scaling(benchmark, record_experiment, bench_seed):
    def _run():
        rows = [_compare_scale(n, bench_seed) for n in (100_000, 1_000_000)]
        return rows, _headline(bench_seed)

    rows, headline = benchmark.pedantic(_run, rounds=1, iterations=1)

    # The acceptance targets: the 10^7-node instance solves end-to-end,
    # and every spawn worker peaks strictly below the single-process
    # kernel subprocess.
    kernel_rss = headline["kernel"]["maxrss_kib"]
    assert headline["n"] == HEADLINE_N
    assert len(headline["shard_rss_kib"]) == HEADLINE_SHARDS
    for shard_rss in headline["shard_rss_kib"]:
        assert shard_rss < kernel_rss, (headline["shard_rss_kib"], kernel_rss)

    shard_rss_mib = [kib // 1024 for kib in headline["shard_rss_kib"]]
    headline_row = {
        "instance": f"BA n={headline['n']} m=3 (spawn workers)",
        "rounds": headline["rounds"],
        "kernel_s": round(headline["kernel"]["wall_s"], 2),
        f"sharded{HEADLINE_SHARDS}_s": round(headline["sharded_s"], 2),
        "kernel_rss_mib": kernel_rss // 1024,
        "max_shard_rss_mib": max(shard_rss_mib),
    }
    record_experiment(
        "E18_sharded",
        "Sharded tier vs kernel tier: byte parity, 10^7-node end-to-end, per-shard RSS",
        format_table(rows + [headline_row])
        + f"\n\nHeadline (n=10^7, {HEADLINE_SHARDS} spawn shards):"
        f"\n  graph build {headline['build_s']}s; kernel subprocess solve "
        f"{round(headline['kernel']['wall_s'], 1)}s at "
        f"{kernel_rss // 1024} MiB peak;"
        f"\n  sharded solve {round(headline['sharded_s'], 1)}s with per-shard"
        f" peaks {shard_rss_mib} MiB -- every worker strictly below the"
        "\n  single-process kernel peak.  RunMetrics (rounds, messages,"
        "\n  bits) identical between the two tiers; result_bytes identity"
        "\n  asserted per shard count at n=10^5 and 10^6 above."
        "\n\nSingle host: all shards share this machine's CPUs, so sharded"
        "\nwall time = kernel time + partition/transport overhead; the tier"
        "\nbuys per-process memory headroom, not single-host speedup.",
    )
    benchmark.extra_info["headline_n"] = headline["n"]


@pytest.mark.bench
def test_e18_ingestion_at_scale(benchmark, record_experiment, bench_seed, tmp_path):
    """Satellite measurement: multi-million-edge edge-list ingestion.

    Writes a synthetic SNAP-style file (sparse ids, comment header,
    duplicate listings) and times the two-pass mmap parse, checking the
    mid-pass progress counters cover the file in both passes.
    """
    import numpy as np

    from repro.graphs.ingest import ingest_edge_list, ingest_metrics

    edges = 3_000_000
    rng = np.random.default_rng(bench_seed)
    u = rng.integers(0, 1_500_000, size=edges, dtype=np.int64) * 7  # sparse ids
    v = u + 1 + rng.integers(0, 50, size=edges, dtype=np.int64)
    path = os.path.join(str(tmp_path), "synthetic.txt")
    with open(path, "w") as stream:
        stream.write("# synthetic SNAP-style edge list\n")
        np.savetxt(stream, np.column_stack([u, v]), fmt="%d")
    size_mb = os.path.getsize(path) / 1e6

    counters = {
        phase: ingest_metrics.counter("repro_ingest_scan_bytes_total", phase=phase)
        for phase in ("count", "fill")
    }
    before = {phase: counter.value for phase, counter in counters.items()}

    def _ingest():
        start = time.perf_counter()
        graph = ingest_edge_list(path)
        return graph, time.perf_counter() - start

    graph, wall_s = benchmark.pedantic(_ingest, rounds=1, iterations=1)

    assert graph.m > 2_000_000  # duplicates collapse some listings
    file_bytes = os.path.getsize(path)
    for phase, counter in counters.items():
        assert counter.value - before[phase] >= file_bytes, phase

    record_experiment(
        "E18_ingest",
        "Ingestion at scale: two-pass mmap parse of a multi-million-edge file",
        format_table(
            [
                {
                    "file_mb": round(size_mb, 1),
                    "lines": edges,
                    "edges_out": graph.m,
                    "nodes_out": graph.n,
                    "wall_s": round(wall_s, 2),
                    "mb_per_s": round(size_mb / wall_s, 1),
                }
            ]
        )
        + "\n\nProgress counters (repro_ingest_scan_bytes_total, phase=count/"
        "fill)\nadvance mid-pass -- both phases covered the full file while"
        "\nthe parse ran, so a metrics scrape observes ingestion progress.",
    )
