"""E12 -- fault-injection overhead: AdversarialEngine vs plain BatchedEngine.

The fault session re-routes every delivery through its in-flight mailbox (the
structure that makes drops, whole-round latencies and crash windows
expressible at all), so an adversarial run cannot be free -- but the *fault
decisions* are NumPy masks over the CSR adjacency, so the overhead must stay
a small constant factor rather than degenerating into a per-message Python
loop.  Measured here at E9 scale, per configuration: wall time under the
plain batched engine, under the adversarial wrapper with an *empty* plan
(pure plumbing overhead, byte-identical results enforced), and under a real
lossy/chaos plan (plumbing plus fault work, with the traffic it drops and
delays reported alongside).

The recorded table is ``benchmarks/results/E12_faults.txt``.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro import RunSpec, execute
from repro.analysis.tables import format_table
from repro.faults import FAULT_MODELS, AdversarialEngine, FaultPlan
from repro.graphs.generators import grid_graph, preferential_attachment_graph
from repro.graphs.weights import assign_random_weights

#: Timing repetitions per (instance, engine); the minimum is reported.
REPEATS = 3


def _time_solver(solver, graph, engine):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = solver(graph, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure(name, graph, solver, plan_name, plan):
    plain_time, plain = _time_solver(solver, graph, "batched")
    engine = AdversarialEngine(plan, inner="batched")
    faulty_time, faulty = _time_solver(solver, graph, engine)
    if plan.is_empty():
        # The empty plan is pure plumbing: results must not move a bit.
        assert faulty.outputs == plain.outputs, name
        assert pickle.dumps(faulty.metrics) == pickle.dumps(plain.metrics), name
    return {
        "instance": name,
        "plan": plan_name,
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
        "rounds": faulty.rounds,
        "dropped": faulty.metrics.total_dropped_messages,
        "delayed": faulty.metrics.total_delayed_messages,
        "batched_s": round(plain_time, 4),
        "adversarial_s": round(faulty_time, 4),
        "overhead_x": round(faulty_time / plain_time, 2),
    }


def _run(bench_seed):
    rows = []

    grid = grid_graph(40, 40)

    def grid_solver(g, engine):
        return execute(RunSpec(graph=g, algorithm="deterministic",
                               params={"epsilon": 0.2}, alpha=2, engine=engine))

    headline = preferential_attachment_graph(2500, attachment=32, seed=bench_seed)
    assign_random_weights(headline, 1, 30, seed=11)

    def headline_solver(g, engine):
        return execute(RunSpec(graph=g, algorithm="weighted",
                               params={"epsilon": 0.2}, alpha=32, engine=engine))

    for name, graph, solver in (
        ("E9 grid 40x40", grid, grid_solver),
        ("E9-scale BA n=2500 deg~32", headline, headline_solver),
    ):
        rows.append(_measure(name, graph, solver, "empty", FaultPlan()))
        rows.append(
            _measure(
                name, graph, solver, "lossy10",
                FAULT_MODELS["lossy10"].materialize(graph, bench_seed),
            )
        )
        rows.append(
            _measure(
                name, graph, solver, "chaos",
                FAULT_MODELS["chaos"].materialize(graph, bench_seed),
            )
        )
    return rows


@pytest.mark.bench
def test_e12_fault_overhead(benchmark, record_experiment, bench_seed):
    rows = benchmark.pedantic(_run, args=(bench_seed,), rounds=1, iterations=1)

    # The wrapper may cost a constant factor (delivery goes through the
    # session's mailbox instead of the plain engine's lazy inboxes), but it
    # must never explode into per-message costs: a generous ceiling guards
    # against that regression while staying safe on noisy CI machines.
    for row in rows:
        assert row["overhead_x"] <= 12.0, row

    # Fault work happened where a fault plan was active.
    assert all(row["dropped"] > 0 for row in rows if row["plan"] != "empty")

    record_experiment(
        "E12_faults",
        "AdversarialEngine overhead vs plain BatchedEngine at E9 scale",
        format_table(rows),
    )
