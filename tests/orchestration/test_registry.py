"""Scenario registry: specs, hashing, building, and solver resolution."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.arboricity import arboricity_upper_bound
from repro.graphs.generators import powerlaw_cluster_graph, random_geometric_graph
from repro.orchestration import (
    GraphSpec,
    ScenarioSpec,
    SolverSpec,
    WeightSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
    unregister_scenario,
)


def _tiny_scenario(name="test/tiny", epsilon=0.3):
    return ScenarioSpec(
        name=name,
        experiment="TEST",
        description="registry unit-test scenario",
        graphs=[GraphSpec("random-tree", {"n": 14}, name="tree-14", alpha=1)],
        solvers=[SolverSpec("deterministic", label="det", params={"epsilon": epsilon})],
        tags=("test",),
    )


class TestGraphSpec:
    def test_build_is_deterministic(self):
        spec = GraphSpec("preferential-attachment", {"n": 30, "attachment": 3}, alpha=3)
        first, second = spec.build(7), spec.build(7)
        assert sorted(first.graph.edges()) == sorted(second.graph.edges())
        assert first.alpha == 3
        assert first.params["seed"] == 7

    def test_cell_seed_varies_instance(self):
        spec = GraphSpec("random-tree", {"n": 25}, alpha=1)
        assert sorted(spec.build(0).graph.edges()) != sorted(spec.build(1).graph.edges())

    def test_pinned_seed_ignores_cell_seed(self):
        spec = GraphSpec("random-tree", {"n": 25}, alpha=1, seed=5)
        assert sorted(spec.build(0).graph.edges()) == sorted(spec.build(99).graph.edges())
        assert spec.build(0).params["seed"] == 5

    def test_seed_offset_decorrelates_siblings(self):
        base = GraphSpec("random-tree", {"n": 25}, alpha=1)
        offset = GraphSpec("random-tree", {"n": 25}, alpha=1, seed_offset=1)
        assert sorted(base.build(3).graph.edges()) != sorted(offset.build(3).graph.edges())
        assert sorted(offset.build(3).graph.edges()) == sorted(base.build(4).graph.edges())

    def test_pinned_graph_still_gets_per_cell_weights(self):
        spec = GraphSpec(
            "random-tree", {"n": 20}, alpha=1, seed=5,
            weights=WeightSpec("random", {"low": 1, "high": 1000}),
        )
        def weights_of(cell_seed):
            graph = spec.build(cell_seed).graph
            return [graph.nodes[node]["weight"] for node in sorted(graph.nodes())]
        # Same pinned graph, but the weight draw follows the cell seed.
        assert sorted(spec.build(0).graph.edges()) == sorted(spec.build(1).graph.edges())
        assert weights_of(0) != weights_of(1)
        assert weights_of(0) == weights_of(0)

    def test_weights_applied(self):
        spec = GraphSpec(
            "random-tree", {"n": 12}, alpha=1,
            weights=WeightSpec("random", {"low": 2, "high": 9}, seed=1),
        )
        graph = spec.build(0).graph
        values = {graph.nodes[node]["weight"] for node in graph.nodes()}
        assert values and values <= set(range(2, 10))

    def test_alpha_computed_when_unspecified(self):
        spec = GraphSpec("grid", {"rows": 4, "cols": 5})
        instance = spec.build(0)
        assert instance.alpha >= 1
        assert instance.alpha >= arboricity_upper_bound(instance.graph) or instance.alpha >= 1

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="unknown graph family"):
            GraphSpec("no-such-family").build(0)

    def test_unknown_weight_scheme_raises(self):
        spec = GraphSpec("random-tree", {"n": 5}, weights=WeightSpec("no-such-scheme"))
        with pytest.raises(KeyError, match="unknown weight scheme"):
            spec.build(0)


class TestNewFamilies:
    def test_powerlaw_cluster_certificate(self):
        graph = powerlaw_cluster_graph(120, attachment=4, triangle_p=0.4, seed=3)
        assert graph.number_of_nodes() == 120
        # The arrival orientation certifies degeneracy <= attachment.
        assert arboricity_upper_bound(graph) <= 4
        assert nx.is_connected(graph)

    def test_random_geometric_structure(self):
        graph = random_geometric_graph(60, 0.2, seed=1)
        assert sorted(graph.nodes()) == list(range(60))
        other = random_geometric_graph(60, 0.2, seed=1)
        assert sorted(graph.edges()) == sorted(other.edges())
        # A larger radius can only add edges.
        bigger = random_geometric_graph(60, 0.35, seed=1)
        assert set(graph.edges()) <= {tuple(sorted(e)) for e in bigger.edges()} | set(
            bigger.edges()
        )


class TestSolverSpec:
    def test_display_label(self):
        assert SolverSpec("deterministic").display_label == "deterministic"
        assert SolverSpec("deterministic", label="x").display_label == "x"
        spec = SolverSpec("randomized", params={"t": 2})
        assert spec.display_label == "randomized(t=2)"

    def test_unknown_solver_raises(self):
        with pytest.raises(KeyError, match="unknown solver"):
            SolverSpec("no-such-solver").make_solver(0, None)("ignored")

    def test_solver_receives_instance_alpha(self):
        spec = GraphSpec("forest-union", {"n": 30, "alpha": 2}, alpha=2)
        instance = spec.build(0)
        result = SolverSpec("deterministic", params={"epsilon": 0.3}).make_solver(0, None)(
            instance
        )
        # Guarantee (2*alpha+1)(1+eps) proves alpha=2 reached the solver.
        assert result.guarantee == pytest.approx(5 * 1.3)


class TestScenarioSpec:
    def test_spec_hash_stable_and_ignores_labels(self):
        assert _tiny_scenario().spec_hash() == _tiny_scenario().spec_hash()
        relabelled = _tiny_scenario()
        relabelled.tags = ("other",)
        relabelled.description = "different words"
        assert relabelled.spec_hash() == _tiny_scenario().spec_hash()

    def test_spec_hash_changes_on_spec_change(self):
        assert _tiny_scenario(epsilon=0.3).spec_hash() != _tiny_scenario(epsilon=0.2).spec_hash()

    def test_invalid_opt_mode_rejected(self):
        with pytest.raises(ValueError, match="opt_mode"):
            ScenarioSpec(name="x", experiment="X", description="", opt_mode="bogus")

    def test_duplicate_solver_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate solver labels"):
            ScenarioSpec(
                name="x", experiment="X", description="",
                graphs=[GraphSpec("random-tree", {"n": 10}, alpha=1)],
                solvers=[
                    SolverSpec("randomized", params={"t": 2}, seed_offset=i)
                    for i in range(3)
                ],
            )

    def test_run_produces_verified_records(self):
        records = _tiny_scenario().run(seed=0)
        assert len(records) == 1
        record = records[0]
        assert record.experiment == "TEST"
        assert record.instance == "tree-14"
        assert record.is_dominating
        assert record.params["solver_label"] == "det"
        assert record.params["cell_seed"] == 0
        assert record.params["epsilon"] == 0.3

    def test_degree_opt_mode_never_reports_false_violations(self):
        scenario = ScenarioSpec(
            name="test/degree-opt",
            experiment="TEST",
            description="",
            graphs=[GraphSpec("caterpillar", {"spine": 6, "legs_per_node": 4}, alpha=1)],
            solvers=[SolverSpec("deterministic", params={"epsilon": 0.2})],
            opt_mode="degree",
        )
        for record in scenario.run(seed=0):
            assert record.opt_kind == "degree-lower-bound"
            assert record.within_guarantee is not False


class TestRegistry:
    def test_register_get_unregister(self):
        spec = _tiny_scenario("test/register-roundtrip")
        try:
            register_scenario(spec)
            assert get_scenario("test/register-roundtrip") is spec
            assert "test/register-roundtrip" in scenario_names(tag="test")
        finally:
            unregister_scenario("test/register-roundtrip")
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("test/register-roundtrip")

    def test_duplicate_registration_rejected(self):
        spec = _tiny_scenario("test/duplicate")
        try:
            register_scenario(spec)
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(_tiny_scenario("test/duplicate"))
            register_scenario(_tiny_scenario("test/duplicate", epsilon=0.2), replace=True)
            assert get_scenario("test/duplicate").solvers[0].params["epsilon"] == 0.2
        finally:
            unregister_scenario("test/duplicate")


class TestBuiltinCatalogue:
    def test_every_experiment_and_example_is_registered(self):
        names = set(scenario_names())
        for experiment in [f"E{i}" for i in range(1, 12)]:
            assert any(name.startswith(experiment + "/") for name in names), experiment
        for example in ("quickstart", "planar-city", "social-influence", "adhoc-wireless"):
            assert f"example/{example}" in names
        for family in ("powerlaw-cluster", "random-geometric", "grid-scale"):
            assert f"families/{family}" in names
        assert len(list_scenarios(tag="smoke")) >= 2

    def test_spec_hashes_are_unique(self):
        hashes = [spec.spec_hash() for spec in list_scenarios()]
        assert len(hashes) == len(set(hashes))

    def test_smoke_scenarios_build(self):
        for spec in list_scenarios(tag="smoke"):
            instances = spec.build_instances(seed=0)
            assert instances
            for instance in instances:
                assert instance.n > 0
                assert instance.alpha >= 1
