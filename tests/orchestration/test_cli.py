"""The ``python -m repro`` CLI: argument handling, exit codes, cache wiring."""

from __future__ import annotations

import pytest

from repro.orchestration.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_sweep_argument_defaults(self):
        arguments = build_parser().parse_args(["sweep", "smoke/forest"])
        assert arguments.scenarios == ["smoke/forest"]
        assert arguments.seeds == 1
        assert arguments.workers == 1
        assert arguments.engine == "batched"
        assert not arguments.smoke and not arguments.all and arguments.tag is None

    def test_engine_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "smoke/forest", "--engine", "warp-drive"])
        # 'both' is a sweep-only engine value.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "smoke/forest", "--engine", "both"])
        arguments = build_parser().parse_args(["sweep", "x", "--engine", "both"])
        assert arguments.engine == "both"


class TestList:
    def test_lists_registry(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        assert "E1/unweighted-eps" in out
        assert "smoke/forest" in out

    def test_tag_filter(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--tag", "smoke")
        assert code == 0
        assert "smoke/forest" in out
        assert "E1/unweighted-eps" not in out

    def test_unmatched_tag(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--tag", "no-such-tag")
        assert code == 0
        assert "no scenarios match" in out


class TestRun:
    def test_fault_scenario_runs_on_kernel_engine(self, capsys, tmp_path):
        # Fault plans execute on the kernel tier (vectorized fault driver);
        # this used to be an exit-2 capability error.
        code, out, _ = run_cli(
            capsys, "run", "smoke/faults", "--engine", "kernel",
            "--cache-dir", str(tmp_path),
        )
        assert code == 0
        assert "smoke/faults" in out
        assert "engine kernel" in out

    def test_run_prints_tables(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "run", "smoke/forest", "--cache-dir", str(tmp_path)
        )
        assert code == 0
        assert "smoke/forest" in out
        assert "tree-36" in out
        assert "mean_ratio" in out

    def test_unknown_scenario_is_usage_error(self, capsys):
        code, _, err = run_cli(capsys, "run", "no/such-scenario")
        assert code == 2
        assert "unknown scenario" in err


class TestSweep:
    def test_requires_a_selection(self, capsys):
        code, _, err = run_cli(capsys, "sweep")
        assert code == 2
        assert "no scenarios selected" in err

    def test_unknown_scenario_is_usage_error(self, capsys):
        code, _, err = run_cli(capsys, "sweep", "no/such-scenario")
        assert code == 2
        assert "unknown scenario" in err

    def test_smoke_checks_engine_parity_and_caches(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "sweep", "--smoke", "--workers", "2", "--cache-dir", str(tmp_path)
        )
        assert code == 0
        assert "parity OK: smoke/forest" in out
        assert "parity OK: smoke/mixed" in out
        assert "parity OK: smoke/faults" in out
        assert "0 from cache (0%)" in out

        # Second invocation: >= 90% of cells served from cache (here: all).
        code, out, _ = run_cli(capsys, "sweep", "--smoke", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "6 from cache (100%)" in out

    def test_seed_and_engine_grid(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "sweep", "smoke/forest", "--seeds", "2",
            "--engine", "both", "--cache-dir", str(tmp_path),
        )
        assert code == 0
        cell_lines = [
            line for line in out.splitlines()
            if line.startswith("[") and "smoke/forest seed=" in line
        ]
        assert len(cell_lines) == 4  # 2 seeds x 2 engines
        assert "parity OK" in out

    def test_engine_all_adds_kernel_parity_cells(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "sweep", "smoke/forest", "--engine", "all",
            "--cache-dir", str(tmp_path),
        )
        assert code == 0
        assert "parity OK: smoke/forest seed=0 (batched, kernel, reference)" in out

    def test_kernel_fault_cells_run_with_full_parity(self, capsys, tmp_path):
        # Fault cells run on the kernel tier too: nothing is silently
        # dropped from --engine all, and the three-way byte-parity check
        # covers the fault scenario.
        code, out, _ = run_cli(
            capsys, "sweep", "smoke/faults", "--engine", "all",
            "--cache-dir", str(tmp_path),
        )
        assert code == 0
        assert "skipping" not in out
        assert "parity OK: smoke/faults seed=0 (batched, kernel, reference)" in out

    def test_unsupported_cells_surface_as_skipped_records(self, capsys, tmp_path):
        # A cell whose engine genuinely cannot run it must show up as an
        # explicit skipped record -- reported per cell, counted in the
        # summary, and never written to the cache.
        from repro.congest.errors import EngineCapabilityError
        from repro.orchestration.registry import register_scenario, unregister_scenario

        class _UnsupportedScenario:
            name = "stub/unsupported"
            experiment = "STUB"
            faults = None
            tags = ()

            def spec_hash(self):
                return "0" * 16

            def run(self, seed=0, engine=None):
                raise EngineCapabilityError(
                    f"algorithm 'stub' has no implementation on engine={engine!r}"
                )

        register_scenario(_UnsupportedScenario(), replace=True)
        try:
            code, out, _ = run_cli(
                capsys, "sweep", "stub/unsupported", "--engine", "kernel",
                "--cache-dir", str(tmp_path),
            )
            assert code == 0
            assert "skipped: algorithm 'stub' has no implementation" in out
            assert "1 skipped (unsupported cells)" in out
            # Not cached: a second sweep skips it again instead of serving
            # a bogus empty cache hit.
            code, out, _ = run_cli(
                capsys, "sweep", "stub/unsupported", "--engine", "kernel",
                "--cache-dir", str(tmp_path),
            )
            assert code == 0
            assert "0 from cache" in out
            assert "skipped: algorithm 'stub' has no implementation" in out
        finally:
            unregister_scenario("stub/unsupported")

    def test_no_cache_flag(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "sweep", "smoke/forest", "--no-cache", "--cache-dir", str(tmp_path)
        )
        assert code == 0
        assert not list(tmp_path.iterdir())
        code, out, _ = run_cli(
            capsys, "sweep", "smoke/forest", "--no-cache", "--cache-dir", str(tmp_path)
        )
        assert "0 from cache" in out

    def test_report_flag_prints_tables(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "sweep", "smoke/forest", "--report", "--cache-dir", str(tmp_path)
        )
        assert code == 0
        assert "tree-36" in out


class TestReport:
    def test_missing_cache_entries_are_an_error(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "report", "smoke/forest", "--cache-dir", str(tmp_path)
        )
        assert code == 2
        assert "no cached results" in err

    def test_renders_cached_cells(self, capsys, tmp_path):
        code, _, _ = run_cli(capsys, "sweep", "smoke/forest", "--cache-dir", str(tmp_path))
        assert code == 0
        code, out, _ = run_cli(capsys, "report", "smoke/forest", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "tree-36" in out
        assert "cache" in out
