"""Budget governor: estimator monotonicity, admission, skips, parity."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.orchestration.cache import ResultCache, records_to_bytes
from repro.orchestration.governor import (
    PeakHoldEstimator,
    SweepBudget,
    SweepGovernor,
)
from repro.orchestration.runner import SweepBudget as ReexportedBudget
from repro.orchestration.runner import SweepCell, SweepRunner, aggregate_skips
from repro.orchestration.scenarios import register_builtin_scenarios


@pytest.fixture(autouse=True)
def _scenarios():
    register_builtin_scenarios()


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def cell(scenario="s", seed=0, engine="batched") -> SweepCell:
    return SweepCell(scenario=scenario, seed=seed, engine=engine)


class TestSweepBudget:
    def test_reexported_from_runner(self):
        assert ReexportedBudget is SweepBudget

    def test_all_none_is_unbounded(self):
        assert not SweepBudget().bounded
        assert SweepBudget(seconds=1.0).bounded
        assert SweepBudget(bytes=1).bounded
        assert SweepBudget(cell_max_rss_kb=1).bounded

    @pytest.mark.parametrize("field", ["seconds", "bytes", "cell_max_rss_kb"])
    @pytest.mark.parametrize("bad", [0, -1])
    def test_non_positive_limits_rejected(self, field, bad):
        with pytest.raises(ValueError, match="must be positive"):
            SweepBudget(**{field: bad})

    def test_wire_round_trip(self):
        budget = SweepBudget(seconds=2.5, bytes=1024, cell_max_rss_kb=4096)
        assert SweepBudget.from_dict(budget.as_dict()) == budget

    def test_wire_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown budget fields"):
            SweepBudget.from_dict({"seconds": 1.0, "minutes": 2})

    def test_describe(self):
        assert SweepBudget().describe() == "unbounded"
        assert "wall" in SweepBudget(seconds=3).describe()


class TestPeakHoldEstimator:
    @given(
        st.lists(
            st.tuples(
                st.booleans(),
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                st.integers(min_value=0, max_value=10**9),
                st.integers(min_value=0, max_value=10**12),
            ),
            max_size=50,
        )
    )
    def test_estimates_are_monotone_under_any_stream(self, stream):
        estimator = PeakHoldEstimator()
        high = (0.0, 0, 0)
        for fresh, elapsed, rss, bits in stream:
            feed = estimator.observe if fresh else estimator.seed
            feed("k", elapsed_s=elapsed, maxrss_kb=rss, bits=bits)
            current = (
                estimator.elapsed_s("k"),
                estimator.maxrss_kb("k"),
                estimator.bits("k"),
            )
            assert current >= high
            high = current

    def test_seed_is_advisory_observe_is_fresh(self):
        estimator = PeakHoldEstimator()
        estimator.seed("k", maxrss_kb=500)
        assert not estimator.rss_is_fresh("k")
        estimator.observe("k", maxrss_kb=100)
        assert estimator.rss_is_fresh("k")
        # A later advisory seed cannot demote fresh evidence.
        estimator.seed("k", maxrss_kb=900)
        assert estimator.rss_is_fresh("k")
        assert estimator.maxrss_kb("k") == 900


class TestGovernorAdmission:
    def test_unbounded_budget_rejected(self):
        with pytest.raises(ValueError, match="unbounded"):
            SweepGovernor(SweepBudget())

    def test_wall_clock_exhaustion_drains_everything_pending(self):
        clock = FakeClock()
        governor = SweepGovernor(SweepBudget(seconds=10), clock=clock)
        governor.schedule([cell(seed=s) for s in range(4)])
        assert governor.next_cell() == cell(seed=0)
        clock.now = 11.0
        assert governor.next_cell() is None
        skips = governor.drain_skips()
        assert [c.seed for c, _ in skips] == [1, 2, 3]
        assert all("wall-clock budget exhausted" in reason for _, reason in skips)
        assert governor.skipped_count() == 3

    def test_byte_exhaustion(self):
        governor = SweepGovernor(SweepBudget(bytes=10), clock=FakeClock())
        governor.schedule([cell(seed=s) for s in range(3)])
        first = governor.next_cell()
        governor.observe(first, elapsed_s=0.0, maxrss_kb=0, bits=200)
        assert governor.next_cell() is None
        assert all(
            "byte budget exhausted" in reason for _, reason in governor.drain_skips()
        )

    def test_wont_fit_veto_on_shrunk_wall_clock(self):
        clock = FakeClock()
        governor = SweepGovernor(SweepBudget(seconds=10), clock=clock)
        governor.seed(cell(), {"elapsed_s": 4.0})
        governor.schedule([cell(seed=0), cell(seed=1)])
        # Projected 8s fits 10s, so nothing is downsampled up front.
        assert governor.next_cell() == cell(seed=0)
        clock.now = 7.0
        assert governor.next_cell() is None
        ((skipped, reason),) = governor.drain_skips()
        assert skipped.seed == 1
        assert "exceeds the remaining" in reason and "wall-clock" in reason

    def test_wont_fit_veto_on_byte_estimate(self):
        governor = SweepGovernor(SweepBudget(bytes=100), clock=FakeClock())
        governor.seed(cell(), {"bits": 1000})
        governor.schedule([cell(seed=0)])
        assert governor.next_cell() is None
        ((_, reason),) = governor.drain_skips()
        assert "byte budget" in reason

    def test_single_overbudget_cell_is_downsampled_to_nothing(self):
        governor = SweepGovernor(SweepBudget(seconds=10), clock=FakeClock())
        governor.seed(cell(scenario="big"), {"elapsed_s": 50.0})
        governor.schedule([cell(scenario="big"), cell(scenario="small")])
        admitted = governor.next_cell()
        assert admitted.scenario == "small"
        assert governor.next_cell() is None
        ((skipped, reason),) = governor.drain_skips()
        assert skipped.scenario == "big"
        assert "budget" in reason

    def test_memory_ceiling_ignores_advisory_evidence(self):
        governor = SweepGovernor(
            SweepBudget(cell_max_rss_kb=100), clock=FakeClock()
        )
        # Cached telemetry says 500 KiB -- advisory only, never a veto: it
        # may be coordinator-sized output of the pre-fix worker probe.
        governor.seed(cell(), {"maxrss_kb": 500})
        governor.schedule([cell(seed=0), cell(seed=1)])
        assert governor.next_cell() == cell(seed=0)
        # Fresh in-sweep evidence above the ceiling vetoes the class.
        governor.observe(cell(seed=0), elapsed_s=0.01, maxrss_kb=500, bits=0)
        assert governor.next_cell() is None
        ((_, reason),) = governor.drain_skips()
        assert "per-cell ceiling" in reason

    def test_reorders_cheapest_class_first_under_pressure(self):
        clock = FakeClock()
        governor = SweepGovernor(SweepBudget(seconds=10), clock=clock)
        governor.seed(cell(scenario="slow"), {"elapsed_s": 8.0})
        governor.seed(cell(scenario="fast"), {"elapsed_s": 0.5})
        governor.schedule(
            [cell(scenario="slow", seed=s) for s in range(2)]
            + [cell(scenario="fast", seed=s) for s in range(2)]
        )
        order = []
        while True:
            admitted = governor.next_cell()
            if admitted is None:
                break
            order.append(admitted.scenario)
        # Projected 17s > 10s remaining: fast cells jump the queue.
        assert order[:2] == ["fast", "fast"]

    def test_downsamples_a_class_that_alone_blows_the_budget(self):
        clock = FakeClock()
        governor = SweepGovernor(SweepBudget(seconds=5), clock=clock)
        governor.seed(cell(), {"elapsed_s": 1.0})
        governor.schedule([cell(seed=s) for s in range(10)])
        admitted = []
        while True:
            nxt = governor.next_cell()
            if nxt is None:
                break
            admitted.append(nxt.seed)
        # 10 cells at ~1s each cannot fit 5s: the seed list is cut to the
        # prefix that fits, and quotas never grow back.
        assert admitted == [0, 1, 2, 3, 4]
        skips = governor.drain_skips()
        assert [c.seed for c, _ in skips] == [5, 6, 7, 8, 9]
        assert all("downsampled" in reason for _, reason in skips)
        assert "downsampled" in governor.summary()

    def test_summary_has_the_stable_skip_phrase(self):
        governor = SweepGovernor(SweepBudget(seconds=1), clock=FakeClock())
        assert "skipped (budget)" in governor.summary()


class TestGovernedRunner:
    SCENARIOS = ["smoke/forest", "smoke/mixed"]
    SEEDS = [0, 1, 2]

    def test_budget_skips_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = SweepRunner(cache=cache, budget=SweepBudget(seconds=1e-9))
        results = runner.sweep(self.SCENARIOS, seeds=self.SEEDS)
        skipped = [r for r in results if r.skipped is not None]
        assert skipped, "a 1ns budget must refuse cells"
        for result in skipped:
            assert result.skip_reason == "budget"
            assert result.records == []
            assert cache.get_entry(result.key) is None
        ran = [r for r in results if r.skipped is None]
        assert cache.entry_count() == len(ran)

    def test_budget_skips_do_not_pollute_capability_aggregation(self):
        runner = SweepRunner(budget=SweepBudget(seconds=1e-9))
        results = runner.sweep(self.SCENARIOS, seeds=self.SEEDS)
        assert any(r.skipped is not None for r in results)
        assert aggregate_skips(results) == {}

    def test_unbounded_budget_takes_the_ungoverned_path(self):
        runner = SweepRunner(budget=SweepBudget())
        results = runner.sweep(self.SCENARIOS, seeds=[0])
        assert runner.budget_summary() is None
        assert all(r.skipped is None for r in results)

    def test_generous_budget_is_byte_identical_to_ungoverned(self):
        baseline = SweepRunner().sweep(self.SCENARIOS, seeds=self.SEEDS)
        governed = SweepRunner(budget=SweepBudget(seconds=600)).sweep(
            self.SCENARIOS, seeds=self.SEEDS
        )
        expected = {
            (r.scenario, r.seed): records_to_bytes(r.records) for r in baseline
        }
        actual = {
            (r.scenario, r.seed): records_to_bytes(r.records) for r in governed
        }
        assert actual == expected

    def test_fresh_results_report_bits_and_summary(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = SweepRunner(cache=cache, budget=SweepBudget(seconds=600))
        results = runner.sweep(["smoke/forest"], seeds=[0])
        (result,) = results
        assert result.bits == sum(rec.total_bits for rec in result.records)
        assert result.bits > 0
        summary = runner.budget_summary()
        assert summary is not None and summary.startswith("budget: ")
        assert "1 admitted" in summary
        # The hit path reads the persisted bits back.
        (hit,) = SweepRunner(
            cache=cache, budget=SweepBudget(seconds=600)
        ).sweep(["smoke/forest"], seeds=[0])
        assert hit.from_cache and hit.bits == result.bits
