"""CLI wire-format surfaces: ``list --json``, ``run --spec``, skip summary."""

from __future__ import annotations

import json

from repro.orchestration.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestListJson:
    def test_emits_machine_readable_registry(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["code_version"]
        names = [entry["name"] for entry in payload["scenarios"]]
        assert "smoke/forest" in names
        entry = next(e for e in payload["scenarios"] if e["name"] == "smoke/forest")
        assert set(entry) == {
            "name",
            "experiment",
            "description",
            "graphs",
            "solvers",
            "tags",
            "faults",
            "spec_hash",
        }

    def test_tag_filter_applies(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--json", "--tag", "smoke")
        assert code == 0
        payload = json.loads(out)
        assert payload["scenarios"]
        assert all("smoke" in entry["tags"] for entry in payload["scenarios"])


class TestRunSpecFile:
    def spec_file(self, tmp_path, payload) -> str:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_runs_a_wire_spec_file(self, capsys, tmp_path):
        path = self.spec_file(
            tmp_path,
            {
                "graph": {"kind": "family", "family": "random-tree", "params": {"n": 25}},
                "algorithm": "deterministic",
                "seed": 2,
            },
        )
        code, out, _ = run_cli(capsys, "run", "--spec", path)
        assert code == 0
        summary = json.loads(out)
        assert summary["algorithm"]
        assert summary["is_valid"] is True
        assert summary["size"] == len(summary["dominating_set"])

    def test_spec_file_matches_direct_session(self, capsys, tmp_path):
        from repro.run import RunSpec, Session
        from repro.serve.service import summarize_result

        payload = {
            "graph": {"kind": "family", "family": "random-tree", "params": {"n": 25}},
            "algorithm": "deterministic",
            "seed": 2,
        }
        path = self.spec_file(tmp_path, payload)
        code, out, _ = run_cli(capsys, "run", "--spec", path)
        assert code == 0
        direct = Session().run(RunSpec.from_dict(payload))
        assert json.loads(out) == summarize_result(direct)

    def test_bad_spec_is_a_usage_error_naming_the_field(self, capsys, tmp_path):
        path = self.spec_file(tmp_path, {"graph": {"kind": "family", "family": "nope"}})
        code, _, err = run_cli(capsys, "run", "--spec", path)
        assert code == 2
        assert "graph" in err and "known graph famil" in err

    def test_missing_file_is_a_usage_error(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "run", "--spec", str(tmp_path / "nope.json"))
        assert code == 2

    def test_scenario_and_spec_are_mutually_exclusive(self, capsys, tmp_path):
        path = self.spec_file(tmp_path, {"graph": {"kind": "edges", "nodes": [], "edges": []}})
        code, _, err = run_cli(capsys, "run", "smoke/forest", "--spec", path)
        assert code == 2
        assert "not both" in err

    def test_no_scenario_and_no_spec_is_a_usage_error(self, capsys):
        code, _, err = run_cli(capsys, "run")
        assert code == 2
        assert "--spec" in err


class TestSweepSkipSummary:
    def test_structured_skip_aggregation_line(self, capsys, tmp_path):
        from repro.congest.errors import EngineCapabilityError
        from repro.orchestration.registry import register_scenario, unregister_scenario

        class _Stub:
            name = "stub/skip-summary"
            experiment = "STUB"
            faults = None
            tags = ()

            def spec_hash(self):
                return "2" * 16

            def run(self, seed=0, engine=None):
                raise EngineCapabilityError(
                    "nope", algorithm="stub-algo", engine="kernel", fault_model=None
                )

        register_scenario(_Stub(), replace=True)
        try:
            code, out, _ = run_cli(
                capsys,
                "sweep",
                "stub/skip-summary",
                "--seeds",
                "2",
                "--engine",
                "kernel",
                "--cache-dir",
                str(tmp_path),
            )
        finally:
            unregister_scenario("stub/skip-summary")
        assert code == 0
        assert "skipped capability cells: stub-algo@kernel x2" in out


class TestServeParser:
    def test_serve_arguments_parse(self):
        from repro.orchestration.cli import build_parser

        arguments = build_parser().parse_args(
            ["serve", "--port", "0", "--engine", "batched", "--no-cache"]
        )
        assert arguments.command == "serve"
        assert arguments.port == 0
        assert arguments.no_cache is True
        assert arguments.graph_capacity == 8

    def test_ingest_argument_shape(self):
        from repro.orchestration.cli import build_parser

        arguments = build_parser().parse_args(
            ["serve", "--ingest", "web=/tmp/a.txt", "--ingest", "road=/tmp/b.txt.gz"]
        )
        assert arguments.ingest == ["web=/tmp/a.txt", "road=/tmp/b.txt.gz"]
