"""Regression tests: sweep workers inherit the default engine explicitly.

``set_default_engine`` mutates module state.  Whether a worker process sees
the parent's value used to depend on the multiprocessing start method: fork
copies it, spawn re-imports the module and silently resets it to
``"reference"``.  The runner now captures the parent's default at submission
time and ships it to :func:`repro.orchestration.runner._execute_cell`, which
applies (and restores) it around the cell -- so ``engine=None`` resolution is
identical inline, under fork, and under spawn.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from repro.analysis.experiments import ExperimentRecord
from repro.congest.engine import get_default_engine, set_default_engine
from repro.orchestration import SweepCell, SweepRunner
from repro.orchestration.runner import _execute_cell


class _DefaultEngineProbe:
    """Scenario-spec stand-in whose records capture the default engine seen.

    Real records are engine-independent by design, so observing which engine
    a worker would resolve for ``engine=None`` requires a probe.  Instances
    are picklable (module-level class), exactly like real ScenarioSpecs.
    """

    name = "test/default-engine-probe"

    def spec_hash(self):
        return "default-engine-probe"

    def run(self, seed, engine):
        return [
            ExperimentRecord(
                experiment="PROBE",
                algorithm="probe",
                instance="probe",
                n=0,
                m=0,
                max_degree=0,
                alpha=1,
                weight=0.0,
                rounds=0,
                ratio=1.0,
                opt_value=1.0,
                opt_kind="exact",
                guarantee=None,
                within_guarantee=None,
                is_dominating=True,
                params={
                    "observed_default": get_default_engine(),
                    "engine_arg": engine,
                    "seed": seed,
                },
            )
        ]


def test_execute_cell_applies_and_restores_the_default_engine():
    original = get_default_engine()
    payload = _execute_cell(_DefaultEngineProbe(), 0, "batched", "batched")
    assert payload["records"][0]["params"]["observed_default"] == "batched"
    assert get_default_engine() == original


def test_spawned_worker_sees_the_parent_default_not_module_state():
    """Under spawn, module state resets to "reference"; the explicit
    ``default_engine`` argument is the only way the parent's choice arrives."""
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
        with_fix = pool.submit(
            _execute_cell, _DefaultEngineProbe(), 0, "batched", "batched"
        ).result()
        without_fix = pool.submit(
            _execute_cell, _DefaultEngineProbe(), 0, "batched", None
        ).result()
    assert with_fix["records"][0]["params"]["observed_default"] == "batched"
    # The pre-fix behavior the explicit argument protects against: a spawned
    # worker falls back to the module's import-time default.
    assert without_fix["records"][0]["params"]["observed_default"] == "reference"


def test_runner_ships_the_current_default_to_cells():
    runner = SweepRunner(cache=None, workers=1)
    # Pre-seed the runner's spec cache so the probe bypasses the registry.
    runner._specs[_DefaultEngineProbe.name] = _DefaultEngineProbe()
    cell = SweepCell(scenario=_DefaultEngineProbe.name, seed=0, engine="batched")

    previous = set_default_engine("batched")
    try:
        (result,) = list(runner.run_cells([cell]))
    finally:
        set_default_engine(previous)
    assert result.records[0].params["observed_default"] == "batched"
