"""Worker memory telemetry: a worker reports its *own* peak, not the parent's.

The historical bug: the worker probe read raw ``ru_maxrss``, so a forked
worker -- whose page tables start as copy-on-write mappings of the
coordinator -- reported the coordinator's high-water mark.  A sweep over a
large ingested graph therefore tagged every tiny cell with the
coordinator-sized peak, and anything consuming that telemetry (now the
budget governor's memory ceiling) would have refused cells that actually
use a few MiB.

:class:`repro.obs.metrics.PeakRssMeter` fixes this by resetting the
high-water mark (``/proc/self/clear_refs``) and reporting growth above a
baseline.  These tests run the meter in a fork child and in a fresh
``fork+exec`` interpreter (what ``spawn`` workers are) while the parent
holds a deliberately large buffer, and require the child to report the
size of its own allocation -- well below the parent's.
"""

from __future__ import annotations

import multiprocessing
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.metrics import PeakRssMeter, peak_rss_kib, reset_peak_rss

linux_only = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="peak-reset relies on /proc/self/clear_refs",
)

PARENT_MIB = 128
CHILD_MIB = 32
CHILD_KIB = CHILD_MIB * 1024
# The child must report at least its own buffer and far less than the
# parent's: half the parent hoard is an order-of-magnitude margin over the
# interpreter's incidental allocations.
CEILING_KIB = PARENT_MIB * 1024 // 2


def _touched(mib: int) -> bytearray:
    buffer = bytearray(mib * 1024 * 1024)
    # Write every page so the kernel actually commits it to the RSS.
    for offset in range(0, len(buffer), 4096):
        buffer[offset] = 1
    return buffer


def _measure_child_peak(queue) -> None:
    meter = PeakRssMeter().start()
    buffer = _touched(CHILD_MIB)
    queue.put(meter.peak_kb())
    del buffer


@linux_only
class TestPeakRssMeter:
    def test_reset_and_probe_work_here(self):
        assert reset_peak_rss()
        assert peak_rss_kib() > 0

    def test_inline_meter_sees_a_known_allocation(self):
        meter = PeakRssMeter().start()
        buffer = _touched(CHILD_MIB)
        peak = meter.peak_kb()
        del buffer
        assert peak >= CHILD_KIB
        assert peak < CHILD_KIB + 64 * 1024

    def test_unstarted_meter_reports_zero(self):
        assert PeakRssMeter().peak_kb() == 0

    def test_fork_worker_reports_its_own_peak_not_the_parents(self):
        hoard = _touched(PARENT_MIB)
        ctx = multiprocessing.get_context("fork")
        queue = ctx.SimpleQueue()
        process = ctx.Process(target=_measure_child_peak, args=(queue,))
        process.start()
        child_peak = queue.get()
        process.join(timeout=30)
        del hoard
        # Without the baseline reset, a fork child's VmHWM/ru_maxrss start
        # at the parent's ~128 MiB footprint; the meter must see only the
        # child's own 32 MiB buffer.
        assert child_peak >= CHILD_KIB
        assert child_peak < CEILING_KIB

    def test_exec_worker_reports_its_own_peak_not_the_parents(self):
        hoard = _touched(PARENT_MIB)
        script = (
            "from repro.obs.metrics import PeakRssMeter\n"
            "meter = PeakRssMeter().start()\n"
            f"buffer = bytearray({CHILD_MIB} * 1024 * 1024)\n"
            "for offset in range(0, len(buffer), 4096):\n"
            "    buffer[offset] = 1\n"
            "print(meter.peak_kb())\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        del hoard
        assert completed.returncode == 0, completed.stderr
        child_peak = int(completed.stdout.strip())
        # fork+exec is exactly what a spawn worker is: ru_maxrss survives
        # the exec with the pre-exec footprint, VmHWM starts fresh, and the
        # meter's growth-above-baseline is correct either way.
        assert child_peak >= CHILD_KIB
        assert child_peak < CEILING_KIB
