"""Fault scenarios through the registry, sweep runner, cache and CLI."""

from __future__ import annotations

import pytest

from repro.faults import FAULT_MODELS, FaultSpec
from repro.orchestration import (
    GraphSpec,
    ScenarioSpec,
    SolverSpec,
    SweepRunner,
    get_scenario,
    list_scenarios,
    records_to_bytes,
    register_scenario,
    unregister_scenario,
)
from repro.orchestration.cli import main as cli_main


def _tiny_fault_scenario(name="test/faulted", faults=None):
    return ScenarioSpec(
        name=name,
        experiment="TEST",
        description="tiny faulted scenario",
        graphs=[GraphSpec("preferential-attachment", {"n": 30, "attachment": 3},
                          name="ba-30", alpha=3)],
        solvers=[SolverSpec("deterministic", params={"epsilon": 0.3})],
        opt_mode="degree",
        faults=faults or FaultSpec(drop_probability=0.15, latency_max=1,
                                   crash_fraction=0.1, crash_at=2, recover_after=2),
    )


class TestRegistryIntegration:
    def test_faults_change_the_spec_hash(self):
        plain = _tiny_fault_scenario(faults=FaultSpec())
        faulted = _tiny_fault_scenario()
        assert plain.spec_hash() != faulted.spec_hash()
        # Relabelling the fault spec must not invalidate caches.
        relabelled = _tiny_fault_scenario(
            faults=FaultSpec(drop_probability=0.15, latency_max=1, crash_fraction=0.1,
                             crash_at=2, recover_after=2, label="renamed")
        )
        assert relabelled.spec_hash() == faulted.spec_hash()

    def test_run_records_carry_the_fault_label(self):
        records = _tiny_fault_scenario().run(seed=0)
        assert records
        assert all("faults" in record.params for record in records)

    def test_builtin_fault_catalogue(self):
        specs = list_scenarios(tag="faults")
        assert len(specs) >= 10
        assert all(spec.faults is not None for spec in specs)
        # The three families x fault axes the issue asks for are present.
        names = " ".join(spec.name for spec in specs)
        assert "crash" in names and "lossy" in names and "churn" in names

    def test_fault_cell_is_engine_independent(self):
        """The cross-engine byte-parity gate, as `sweep --smoke` enforces it."""
        spec = get_scenario("smoke/faults")
        by_engine = {
            engine: records_to_bytes(spec.run(seed=0, engine=engine))
            for engine in ("reference", "batched")
        }
        assert by_engine["reference"] == by_engine["batched"]


class TestSweepIntegration:
    def test_parallel_fault_sweep_matches_serial(self):
        try:
            register_scenario(_tiny_fault_scenario())
            serial = SweepRunner(cache=None, workers=1).sweep(["test/faulted"], seeds=[0, 1])
            parallel = SweepRunner(cache=None, workers=2).sweep(["test/faulted"], seeds=[0, 1])
            for s, p in zip(serial, parallel):
                assert records_to_bytes(s.records) == records_to_bytes(p.records), s.cell
        finally:
            unregister_scenario("test/faulted")

    def test_fault_cells_cache_and_replay(self, tmp_path):
        from repro.orchestration import ResultCache

        try:
            register_scenario(_tiny_fault_scenario())
            first = SweepRunner(cache=ResultCache(tmp_path), workers=1).sweep(
                ["test/faulted"], seeds=[0]
            )
            second = SweepRunner(cache=ResultCache(tmp_path), workers=1).sweep(
                ["test/faulted"], seeds=[0]
            )
            assert not first[0].from_cache and second[0].from_cache
            assert records_to_bytes(first[0].records) == records_to_bytes(second[0].records)
        finally:
            unregister_scenario("test/faulted")


class TestCliFaults:
    def _run_cli(self, capsys, *argv):
        code = cli_main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_faults_flag_derives_and_runs_overlaid_scenarios(self, capsys):
        code, out, _ = self._run_cli(
            capsys, "sweep", "smoke/forest", "--faults", "lossy10", "--no-cache"
        )
        assert code == 0
        assert "smoke/forest+lossy10" in out
        derived = get_scenario("smoke/forest+lossy10")
        assert derived.faults is FAULT_MODELS["lossy10"]
        assert "faults" in derived.tags

    def test_faults_flag_rejects_unknown_models(self, capsys):
        with pytest.raises(SystemExit):
            self._run_cli(capsys, "sweep", "smoke/forest", "--faults", "asteroid")

    def test_degraded_records_do_not_fail_the_sweep(self, capsys):
        # crash30 on the BA graph reliably leaves nodes undominated; the cell
        # must report degradation and still exit 0.
        code, out, _ = self._run_cli(
            capsys, "sweep", "faults/crash30-ba", "--no-cache"
        )
        assert code == 0
        assert "degraded" in out

    def test_run_command_accepts_faults(self, capsys):
        code, out, _ = self._run_cli(
            capsys, "run", "smoke/mixed", "--faults", "latency2", "--no-cache"
        )
        assert code == 0
        assert "faults latency2" in out

    def test_already_faulted_scenarios_are_not_double_wrapped(self, capsys):
        code, out, _ = self._run_cli(
            capsys, "sweep", "smoke/faults", "--faults", "lossy10", "--no-cache"
        )
        assert code == 0
        assert "smoke/faults+lossy10" not in out
