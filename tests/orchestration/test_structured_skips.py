"""Structured capability-skip keys: CellResult.skipped_cell and aggregation."""

from __future__ import annotations

import pytest

from repro.congest.errors import EngineCapabilityError
from repro.orchestration.registry import register_scenario, unregister_scenario
from repro.orchestration.runner import (
    CellResult,
    SweepCell,
    SweepRunner,
    aggregate_skips,
    expand_cells,
    format_skip_cell,
)


class _UnsupportedScenario:
    """A stub whose run always raises a fully attributed capability error."""

    name = "stub/structured-skip"
    experiment = "STUB"
    faults = None
    tags = ()

    def spec_hash(self):
        return "1" * 16

    def run(self, seed=0, engine=None):
        raise EngineCapabilityError(
            "no can do",
            algorithm="stub-algo",
            engine=engine,
            fault_model="crash15",
        )


class TestCellKeyPlumbing:
    def test_skipped_cell_carries_the_structured_key(self, tmp_path):
        register_scenario(_UnsupportedScenario(), replace=True)
        try:
            runner = SweepRunner(cache=None)
            (result,) = runner.sweep(["stub/structured-skip"], engines=["kernel"])
        finally:
            unregister_scenario("stub/structured-skip")
        assert result.skipped == "no can do"
        assert result.skipped_cell == ("stub-algo", "kernel", "crash15")

    def test_skipped_cell_survives_worker_processes(self, tmp_path):
        register_scenario(_UnsupportedScenario(), replace=True)
        try:
            runner = SweepRunner(cache=None, workers=2)
            cells = expand_cells(["stub/structured-skip"], seeds=[0, 1], engines=["kernel"])
            results = list(runner.run_cells(cells))
        finally:
            unregister_scenario("stub/structured-skip")
        assert all(r.skipped_cell == ("stub-algo", "kernel", "crash15") for r in results)

    def test_capability_error_without_attribution_defaults_to_none_key(self):
        error = EngineCapabilityError("bare message")
        assert error.cell == (None, None, None)

    def test_session_attributes_csr_capability_cells(self):
        import networkx as nx

        from repro.graphs.large_scale import csr_from_networkx
        from repro.run import RunSpec, Session

        spec = RunSpec(
            graph=csr_from_networkx(nx.path_graph(4)),
            algorithm="deterministic",
            engine="batched",
            faults="crash15",
        )
        with pytest.raises(EngineCapabilityError) as caught:
            Session().run(spec)
        assert caught.value.cell == ("deterministic", "batched", "crash15")


def _skip_result(cell_key, scenario="s", engine="kernel") -> CellResult:
    return CellResult(
        cell=SweepCell(scenario=scenario, seed=0, engine=engine),
        records=[],
        from_cache=False,
        duration_s=0.0,
        key="k",
        skipped="msg",
        skipped_cell=cell_key,
    )


class TestAggregation:
    def test_counts_by_cell_key(self):
        results = [
            _skip_result(("a", "kernel", None)),
            _skip_result(("a", "kernel", None)),
            _skip_result(("b", "kernel", "crash15")),
            CellResult(
                cell=SweepCell(scenario="ok", seed=0, engine="kernel"),
                records=[],
                from_cache=False,
                duration_s=0.0,
                key="k2",
            ),
        ]
        counts = aggregate_skips(results)
        assert counts == {
            ("a", "kernel", None): 2,
            ("b", "kernel", "crash15"): 1,
        }

    def test_unattributed_skips_land_under_none_key(self):
        counts = aggregate_skips([_skip_result(None)])
        assert counts == {(None, None, None): 1}

    def test_format_skip_cell(self):
        assert format_skip_cell(("a", "kernel", None)) == "a@kernel"
        assert format_skip_cell(("a", "kernel", "crash15")) == "a@kernel+crash15"
        assert format_skip_cell((None, None, None)) == "?@?"
