"""Sweep-runner telemetry: per-cell elapsed/memory, trace plumbing, refresh."""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.obs.trace import load_trace, validate_trace
from repro.orchestration.cache import ResultCache
from repro.orchestration.registry import get_scenario, register_scenario
from repro.orchestration.runner import SweepCell, SweepRunner, _execute_cell
from repro.orchestration.scenarios import register_builtin_scenarios


@pytest.fixture(autouse=True)
def _scenarios():
    register_builtin_scenarios()


def _run(runner, scenario="smoke/forest", seed=0, engine="batched"):
    (result,) = runner.sweep([scenario], seeds=[seed], engines=[engine])
    return result


class TestCellTelemetry:
    def test_fresh_cell_measures_elapsed_and_memory(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"))
        result = _run(runner)
        assert not result.from_cache
        assert result.elapsed_s > 0
        # maxrss_kb is the cell's own peak RSS *growth* (PeakRssMeter): a
        # tiny smoke cell that fits in already-resident heap pages reports
        # 0, which is accurate -- never the coordinator's footprint.
        assert result.maxrss_kb >= 0

    def test_cache_hit_restores_the_original_cost(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fresh = _run(SweepRunner(cache=cache))
        hit = _run(SweepRunner(cache=cache))
        assert hit.from_cache
        assert hit.duration_s == 0.0
        assert hit.elapsed_s == pytest.approx(fresh.elapsed_s)
        assert hit.maxrss_kb == fresh.maxrss_kb

    def test_meta_is_persisted_in_the_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = _run(SweepRunner(cache=cache))
        entry = json.loads(cache.path_for(result.key).read_text())
        assert entry["meta"]["elapsed_s"] == pytest.approx(result.elapsed_s)
        assert entry["meta"]["maxrss_kb"] == result.maxrss_kb
        records, meta = cache.get_entry(result.key)
        assert len(records) == len(result.records)
        assert meta["scenario"] == "smoke/forest"

    def test_pre_telemetry_entries_default_to_zero(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = _run(SweepRunner(cache=cache))
        # Simulate an entry written before the telemetry fields existed.
        path = cache.path_for(result.key)
        entry = json.loads(path.read_text())
        entry["meta"].pop("elapsed_s")
        entry["meta"].pop("maxrss_kb")
        path.write_text(json.dumps(entry))
        hit = _run(SweepRunner(cache=cache))
        assert hit.from_cache
        assert hit.elapsed_s == 0.0
        assert hit.maxrss_kb == 0

    def test_refresh_skips_reads_but_still_writes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = _run(SweepRunner(cache=cache))
        refreshed = _run(SweepRunner(cache=cache, refresh=True))
        assert not refreshed.from_cache
        assert refreshed.key == first.key
        # The refreshed execution rewrote the entry.
        records, meta = cache.get_entry(first.key)
        assert meta["elapsed_s"] == pytest.approx(refreshed.elapsed_s)


class TestTracePlumbing:
    def test_trace_dir_traces_executed_cells(self, tmp_path):
        runner = SweepRunner(
            cache=ResultCache(tmp_path / "cache"), trace_dir=tmp_path / "traces"
        )
        result = _run(runner)
        trace_file = tmp_path / "traces" / "smoke-forest__seed0__batched.jsonl"
        assert trace_file.is_file()
        records = load_trace(trace_file)
        assert validate_trace(records) == []
        runs = [record for record in records if record["type"] == "run"]
        # One run span per (instance, solver) pair of the cell.
        assert len(runs) == len(result.records)

    def test_cache_hits_are_not_traced(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        _run(SweepRunner(cache=cache))
        runner = SweepRunner(cache=cache, trace_dir=tmp_path / "traces")
        result = _run(runner)
        assert result.from_cache
        assert not (tmp_path / "traces").exists()

    def test_explicit_trace_path_wins(self, tmp_path):
        runner = SweepRunner(cache=None)
        cell = SweepCell(scenario="smoke/forest", seed=0, engine="batched")
        runner.trace_paths[cell] = str(tmp_path / "exact.jsonl")
        _run(runner)
        assert (tmp_path / "exact.jsonl").is_file()
        assert validate_trace(load_trace(tmp_path / "exact.jsonl")) == []

    def test_stale_trace_file_is_replaced_not_appended(self, tmp_path):
        # Run ids restart at 0 in every process, so a prior invocation's
        # file must be started fresh: appending would duplicate run ids and
        # fail validation.  A leftover from a "previous process" stands in
        # for the re-run case.
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        stale = trace_dir / "smoke-forest__seed0__batched.jsonl"
        stale.write_text(
            json.dumps({"type": "run", "run_id": 0, "trace_schema": 1}) + "\n"
        )
        _run(SweepRunner(cache=None, trace_dir=trace_dir))
        records = load_trace(stale)
        assert validate_trace(records) == []
        assert all(record.get("n") is not None
                   for record in records if record["type"] == "run")

    def test_traced_records_are_byte_identical_to_untraced(self, tmp_path):
        from repro.orchestration.cache import records_to_bytes

        plain = _run(SweepRunner(cache=None))
        traced = _run(SweepRunner(cache=None, trace_dir=tmp_path / "traces"))
        assert records_to_bytes(plain.records) == records_to_bytes(traced.records)

    def test_duck_typed_spec_without_tracer_runs_untraced(self, tmp_path):
        class LegacySpec:
            def run(self, seed=0, engine=None):
                return []

        payload = _execute_cell(
            LegacySpec(), 0, "batched", None, str(tmp_path / "t.jsonl")
        )
        assert payload["records"] == []
        # No tracer was attached, so nothing was written.
        assert not (tmp_path / "t.jsonl").exists()

    def test_scenario_run_accepts_a_tracer(self, tmp_path):
        from repro.obs.trace import FileTracer

        spec = get_scenario("smoke/forest")
        with FileTracer(tmp_path / "direct.jsonl") as tracer:
            records = spec.run(seed=0, engine="batched", tracer=tracer)
        assert records
        assert validate_trace(load_trace(tmp_path / "direct.jsonl")) == []
