"""Sweep runner: parallel determinism, cache integration, streaming order."""

from __future__ import annotations

import time

import pytest

from repro.orchestration.runner import pool_map_ordered
from repro.orchestration import (
    GraphSpec,
    ResultCache,
    ScenarioSpec,
    SolverSpec,
    SweepCell,
    SweepRunner,
    expand_cells,
    records_to_bytes,
    register_scenario,
    unregister_scenario,
)

SMOKE = ["smoke/forest", "smoke/mixed"]


class TestExpandCells:
    def test_deterministic_cross_product_order(self):
        cells = expand_cells(["a", "b"], [0, 1], ["batched", "reference"])
        assert cells[0] == SweepCell("a", 0, "batched")
        assert cells[1] == SweepCell("a", 0, "reference")
        assert cells[2] == SweepCell("a", 1, "batched")
        assert len(cells) == 8

    def test_default_engine(self):
        (cell,) = expand_cells(["a"], [3])
        assert cell.engine == "batched"


class TestDeterminism:
    def test_parallel_sweep_matches_serial_byte_for_byte(self):
        serial = SweepRunner(cache=None, workers=1).sweep(SMOKE, seeds=[0, 1])
        parallel = SweepRunner(cache=None, workers=3).sweep(SMOKE, seeds=[0, 1])
        assert [r.cell for r in serial] == [r.cell for r in parallel]
        for s, p in zip(serial, parallel):
            assert records_to_bytes(s.records) == records_to_bytes(p.records), s.cell
        assert not any(r.from_cache for r in parallel)

    def test_engines_produce_identical_records(self):
        both = SweepRunner(cache=None, workers=1).sweep(
            ["smoke/forest"], seeds=[0], engines=["batched", "reference"]
        )
        assert len(both) == 2
        assert records_to_bytes(both[0].records) == records_to_bytes(both[1].records)
        # ... but live under different cache keys.
        assert both[0].key != both[1].key


class TestCacheIntegration:
    def test_second_sweep_is_fully_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = SweepRunner(cache=cache, workers=1).sweep(SMOKE, seeds=[0, 1])
        assert not any(r.from_cache for r in first)

        rerun_cache = ResultCache(tmp_path)
        second = SweepRunner(cache=rerun_cache, workers=1).sweep(SMOKE, seeds=[0, 1])
        # Acceptance bar is >= 90% served from cache; determinism makes it 100%.
        assert all(r.from_cache for r in second)
        assert rerun_cache.stats.hit_rate == 1.0
        for a, b in zip(first, second):
            assert records_to_bytes(a.records) == records_to_bytes(b.records)

    def test_parallel_and_serial_share_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache, workers=3).sweep(SMOKE, seeds=[0, 1])
        followup = SweepRunner(cache=ResultCache(tmp_path), workers=1).sweep(
            SMOKE, seeds=[0, 1]
        )
        assert all(r.from_cache for r in followup)

    def test_partial_cache_only_recomputes_missing_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(cache=cache, workers=1).sweep(SMOKE, seeds=[0])
        mixed = SweepRunner(cache=ResultCache(tmp_path), workers=1).sweep(SMOKE, seeds=[0, 1])
        by_seed = {(r.scenario, r.seed): r.from_cache for r in mixed}
        assert by_seed[("smoke/forest", 0)] is True
        assert by_seed[("smoke/forest", 1)] is False

    def test_spec_change_invalidates(self, tmp_path):
        def make(n):
            return ScenarioSpec(
                name="test/invalidate",
                experiment="TEST",
                description="",
                graphs=[GraphSpec("random-tree", {"n": n}, alpha=1)],
                solvers=[SolverSpec("deterministic", params={"epsilon": 0.5})],
            )

        try:
            register_scenario(make(12))
            cache = ResultCache(tmp_path)
            (first,) = SweepRunner(cache=cache, workers=1).sweep(["test/invalidate"])
            assert not first.from_cache

            (hit,) = SweepRunner(cache=cache, workers=1).sweep(["test/invalidate"])
            assert hit.from_cache

            register_scenario(make(13), replace=True)
            (miss,) = SweepRunner(cache=cache, workers=1).sweep(["test/invalidate"])
            assert not miss.from_cache
            assert miss.key != first.key
            assert miss.spec_hash != first.spec_hash
        finally:
            unregister_scenario("test/invalidate")

    def test_no_cache_runner_never_writes(self, tmp_path):
        runner = SweepRunner(cache=None, workers=1)
        results = runner.sweep(["smoke/forest"], seeds=[0])
        assert not results[0].from_cache
        assert not list(tmp_path.iterdir())


class TestStreaming:
    def test_results_stream_in_submission_order(self, tmp_path):
        cells = expand_cells(SMOKE, [0, 1])
        runner = SweepRunner(cache=ResultCache(tmp_path), workers=2)
        seen = [result.cell for result in runner.run_cells(cells)]
        assert seen == cells

    def test_unknown_scenario_fails_fast(self):
        runner = SweepRunner(cache=None, workers=1)
        with pytest.raises(KeyError, match="unknown scenario"):
            list(runner.run_cells([SweepCell("test/does-not-exist", 0, "batched")]))


def _pool_square(job):
    return job * job


def _pool_sleep(job):
    time.sleep(job)
    return job


class TestPoolMapOrdered:
    def test_inline_and_pooled_yield_in_submission_order(self):
        jobs = [3, 1, 2, 0]
        inline = [result for result, _ in pool_map_ordered(_pool_square, jobs, workers=1)]
        pooled = [result for result, _ in pool_map_ordered(_pool_square, jobs, workers=2)]
        assert inline == pooled == [9, 1, 4, 0]

    def test_durations_are_reported(self):
        [(result, duration)] = list(pool_map_ordered(_pool_square, [5], workers=4))
        assert result == 25
        assert duration >= 0.0

    def test_abandoned_pooled_stream_does_not_wait_for_queued_jobs(self):
        # Six 2-second jobs on two workers: a full drain costs >= 6s.  A
        # consumer that stops after the first result must not be held
        # hostage by the queued jobs -- close() cancels what has not
        # started and returns without waiting for the rest.
        jobs = [2.0] * 6
        start = time.perf_counter()
        stream = pool_map_ordered(_pool_sleep, jobs, workers=2)
        first, _ = next(stream)
        stream.close()
        elapsed = time.perf_counter() - start
        assert first == 2.0
        assert elapsed < 5.0, f"early close waited {elapsed:.1f}s for abandoned jobs"
