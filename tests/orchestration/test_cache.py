"""Result cache: round-trips, hits/misses, and invalidation semantics."""

from __future__ import annotations

import json

import pytest

from repro.orchestration import GraphSpec, ScenarioSpec, SolverSpec
from repro.orchestration.cache import (
    ResultCache,
    cache_key,
    code_version,
    record_from_dict,
    record_to_dict,
    records_to_bytes,
)


@pytest.fixture(scope="module")
def sample_records():
    scenario = ScenarioSpec(
        name="test/cache-sample",
        experiment="TEST",
        description="",
        graphs=[GraphSpec("random-tree", {"n": 16}, name="tree-16", alpha=1)],
        solvers=[
            SolverSpec("deterministic", label="det", params={"epsilon": 0.3}),
            SolverSpec("forest", label="trivial"),
        ],
    )
    return scenario.run(seed=0)


class TestSerialization:
    def test_record_dict_roundtrip(self, sample_records):
        for record in sample_records:
            clone = record_from_dict(record_to_dict(record))
            assert clone == record

    def test_json_roundtrip_is_exact(self, sample_records):
        # Floats must survive JSON exactly for the byte-parity guarantees.
        payload = json.loads(json.dumps([record_to_dict(r) for r in sample_records]))
        clones = [record_from_dict(entry) for entry in payload]
        assert records_to_bytes(clones) == records_to_bytes(sample_records)

    def test_records_to_bytes_detects_differences(self, sample_records):
        mutated = [record_from_dict(record_to_dict(r)) for r in sample_records]
        mutated[0].ratio += 1e-12
        assert records_to_bytes(mutated) != records_to_bytes(sample_records)


class TestCacheKey:
    def test_key_is_stable(self):
        assert cache_key("abc", 0, "batched") == cache_key("abc", 0, "batched")

    def test_key_varies_with_every_coordinate(self):
        base = cache_key("abc", 0, "batched", version="v1")
        assert cache_key("abd", 0, "batched", version="v1") != base
        assert cache_key("abc", 1, "batched", version="v1") != base
        assert cache_key("abc", 0, "reference", version="v1") != base
        assert cache_key("abc", 0, "batched", version="v2") != base

    def test_code_version_is_stable_within_process(self):
        assert code_version() == code_version()

    def test_code_version_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
        assert code_version() == "pinned"

    def test_spec_change_moves_the_key(self):
        spec_a = ScenarioSpec(
            name="x", experiment="X", description="",
            graphs=[GraphSpec("random-tree", {"n": 16})],
            solvers=[SolverSpec("deterministic", params={"epsilon": 0.3})],
        )
        spec_b = ScenarioSpec(
            name="x", experiment="X", description="",
            graphs=[GraphSpec("random-tree", {"n": 17})],
            solvers=[SolverSpec("deterministic", params={"epsilon": 0.3})],
        )
        assert cache_key(spec_a.spec_hash(), 0, "batched") != cache_key(
            spec_b.spec_hash(), 0, "batched"
        )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, sample_records):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("deadbeef", 0, "batched", version="v")
        assert cache.get(key) is None
        cache.put(key, sample_records)
        assert key in cache
        restored = cache.get(key)
        assert restored == sample_records
        assert records_to_bytes(restored) == records_to_bytes(sample_records)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1
        assert cache.stats.hit_rate == 0.5

    def test_meta_stored_alongside_records(self, tmp_path, sample_records):
        cache = ResultCache(tmp_path)
        key = cache_key("feedface", 3, "reference", version="v")
        path = cache.put(key, sample_records, meta={"scenario": "test/cache-sample"})
        payload = json.loads(path.read_text())
        assert payload["meta"]["scenario"] == "test/cache-sample"
        assert len(payload["records"]) == len(sample_records)

    def test_corrupt_entry_is_a_miss(self, tmp_path, sample_records):
        cache = ResultCache(tmp_path)
        key = cache_key("0badc0de", 0, "batched", version="v")
        path = cache.put(key, sample_records)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_entry_count_and_clear(self, tmp_path, sample_records):
        cache = ResultCache(tmp_path)
        for seed in range(3):
            cache.put(cache_key("hash", seed, "batched", version="v"), sample_records)
        assert cache.entry_count() == 3
        assert cache.clear() == 3
        assert cache.entry_count() == 0

    def test_default_root_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert ResultCache().root == tmp_path / "env-cache"
