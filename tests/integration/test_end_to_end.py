"""End-to-end integration tests: every algorithm on a shared workload.

These tests mirror what the benchmark harness does, at a smaller scale: run
the paper's algorithms and the baselines on the standard workload, verify
every run, and check the qualitative comparisons the paper claims (the
"who wins" shape), e.g. that the new deterministic algorithm needs far fewer
rounds than the LP-based prior work and far fewer than the O(alpha log n)
algorithm on high-degree instances.
"""

from __future__ import annotations

import math

import pytest

from repro import RunSpec, execute
from repro.analysis.experiments import aggregate_records, sweep
from repro.analysis.opt import estimate_opt
from repro.baselines.bansal_umboh import bansal_umboh_dominating_set
from repro.baselines.greedy import greedy_dominating_set
from repro.baselines.lenzen_wattenhofer import LWDeterministicAlgorithm
from repro.congest.simulator import run_algorithm
from repro.graphs.generators import (
    preferential_attachment_graph,
    random_tree,
    standard_test_suite,
)
from repro.graphs.validation import is_dominating_set
from repro.graphs.weights import assign_random_weights


def solve_mds(graph, alpha=None, epsilon=0.1):
    return execute(
        RunSpec(graph=graph, algorithm="deterministic",
                params={"epsilon": epsilon}, alpha=alpha)
    )


def solve_weighted_mds(graph, alpha=None, epsilon=0.1):
    return execute(
        RunSpec(graph=graph, algorithm="weighted",
                params={"epsilon": epsilon}, alpha=alpha)
    )


def solve_mds_randomized(graph, alpha=None, t=1, seed=0):
    return execute(
        RunSpec(graph=graph, algorithm="randomized",
                params={"t": t}, alpha=alpha, seed=seed)
    )


def solve_mds_forest(graph):
    return execute(RunSpec(graph=graph, algorithm="forest"))


@pytest.fixture(scope="module")
def tiny_suite():
    return standard_test_suite("tiny", seed=5)


class TestWholeSuiteUnweighted:
    def test_paper_algorithm_valid_and_within_guarantee_everywhere(self, tiny_suite):
        records = sweep(
            "integration",
            tiny_suite,
            {"paper-det": lambda inst: solve_mds(inst.graph, alpha=inst.alpha, epsilon=0.2)},
        )
        summary = aggregate_records(records)
        stats = next(iter(summary.values()))
        assert stats["violations"] == 0
        assert stats["runs"] == len(tiny_suite)

    def test_randomized_beats_deterministic_guarantee_shape(self, tiny_suite):
        """The randomized algorithm stays valid everywhere, and for large
        arboricity its guarantee (alpha + O(alpha/t)) drops below the
        deterministic (2*alpha+1)(1+eps) -- Theorem 1.2's asymptotic point.
        (For the tiny-alpha suite instances the constants of Lemma 4.6
        dominate, so the formula comparison is done at larger alpha.)"""
        for instance in tiny_suite:
            deterministic = solve_mds(instance.graph, alpha=instance.alpha, epsilon=0.2)
            randomized = solve_mds_randomized(instance.graph, alpha=instance.alpha, t=2, seed=1)
            assert randomized.is_valid and deterministic.is_valid
        from repro.core.randomized import RandomizedMDSAlgorithm

        for alpha in (64, 256, 1024):
            t = max(1, int(alpha ** 0.5))
            randomized_guarantee = RandomizedMDSAlgorithm(t=t).approximation_guarantee(alpha)
            deterministic_guarantee = (2 * alpha + 1) * 1.1
            assert randomized_guarantee < deterministic_guarantee

    def test_all_algorithms_valid_on_every_family(self, tiny_suite):
        for instance in tiny_suite:
            for result in (
                solve_mds(instance.graph, alpha=instance.alpha),
                solve_mds_randomized(instance.graph, alpha=instance.alpha, t=1, seed=2),
            ):
                assert result.is_valid, (instance.name, result.algorithm)


class TestComparisonShape:
    """The qualitative comparisons from Section 1.2 ("our algorithm improves on...")."""

    def test_fewer_rounds_than_lp_based_prior_work(self):
        graph = preferential_attachment_graph(300, attachment=4, seed=7)
        ours = solve_mds(graph, alpha=4, epsilon=0.2)
        prior = bansal_umboh_dominating_set(graph, alpha=4, epsilon=0.2)
        # O(log Delta / eps) vs O(log^2 Delta / eps^4): orders of magnitude.
        assert ours.rounds < prior.nominal_rounds / 10

    def test_fewer_rounds_than_alpha_log_n_on_large_instances(self):
        graph = preferential_attachment_graph(400, attachment=4, seed=8)
        ours = solve_mds(graph, alpha=4, epsilon=0.3)
        # The MSW-style bound is O(alpha * log n); ours is O(log Delta / eps).
        alpha_log_n = 4 * math.log2(graph.number_of_nodes())
        assert ours.rounds <= 4 * alpha_log_n

    def test_quality_competitive_with_greedy_on_bounded_arboricity(self, tiny_suite):
        """Greedy has a log(Delta) factor; ours has 2*alpha+1.  On the
        bounded-arboricity workload our measured quality should be within a
        small factor of greedy's (and both within their guarantees)."""
        for instance in tiny_suite:
            opt = estimate_opt(instance.graph)
            ours = solve_mds(instance.graph, alpha=instance.alpha, epsilon=0.2)
            greedy_set, greedy_weight = greedy_dominating_set(instance.graph)
            assert ours.weight <= max(3.0 * greedy_weight, ours.guarantee * opt.value)

    def test_beats_lw_deterministic_quality_on_high_degree_graph(self):
        graph = preferential_attachment_graph(250, attachment=3, seed=9)
        ours = solve_mds(graph, alpha=3, epsilon=0.2)
        lw = run_algorithm(graph, LWDeterministicAlgorithm(), alpha=3)
        lw_size = len(lw.selected_nodes())
        assert is_dominating_set(graph, lw.selected_nodes())
        # "Who wins" shape: the paper's algorithm is at least competitive with
        # the O(alpha log Delta) baseline (individual instances can go either
        # way by a small margin; a large loss would indicate a bug).
        assert ours.weight <= 1.5 * lw_size


class TestWeightedEndToEnd:
    def test_weighted_pipeline(self, tiny_suite):
        for instance in tiny_suite[:4]:
            graph = instance.graph.copy()
            assign_random_weights(graph, 1, 60, seed=instance.n)
            result = solve_weighted_mds(graph, alpha=instance.alpha, epsilon=0.25)
            assert result.is_valid
            opt = estimate_opt(graph)
            assert result.weight <= result.guarantee * opt.value + 1e-6

    def test_forest_special_case_consistency(self):
        graph = random_tree(80, seed=12)
        forest_result = solve_mds_forest(graph)
        general_result = solve_mds(graph, alpha=1, epsilon=0.2)
        assert forest_result.is_valid and general_result.is_valid
        # The single-round algorithm pays in quality what it saves in rounds.
        assert forest_result.rounds <= general_result.rounds
