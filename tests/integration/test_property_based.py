"""Property-based tests (hypothesis) on the core invariants.

These tests draw random graphs, weights and seeds, and check the invariants
the paper proves for *every* input: the output is always a dominating set,
the packing certificate is always feasible, weak duality always holds, and
the approximation guarantee is never violated.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import RunSpec, execute
from repro.baselines.exact import exact_minimum_weight_dominating_set
from repro.congest.engine import universal_engines
from repro.congest.simulator import run_algorithm
from repro.core.packing import is_feasible_packing, packing_from_outputs, packing_value_sum
from repro.core.weighted import WeightedMDSAlgorithm
from repro.graphs.arboricity import arboricity_upper_bound
from repro.graphs.generators import random_bounded_arboricity_graph
from repro.graphs.validation import dominating_set_weight, is_dominating_set


def solve_mds(graph, alpha=None, epsilon=0.1, engine=None):
    return execute(
        RunSpec(graph=graph, algorithm="deterministic",
                params={"epsilon": epsilon}, alpha=alpha, engine=engine)
    )


def solve_weighted_mds(graph, alpha=None, epsilon=0.1, engine=None):
    return execute(
        RunSpec(graph=graph, algorithm="weighted",
                params={"epsilon": epsilon}, alpha=alpha, engine=engine)
    )


def solve_mds_randomized(graph, alpha=None, t=1, seed=0, engine=None):
    return execute(
        RunSpec(graph=graph, algorithm="randomized",
                params={"t": t}, alpha=alpha, seed=seed, engine=engine)
    )


def _random_weighted_graph(n, alpha, weight_seed, structure_seed):
    graph = random_bounded_arboricity_graph(n, alpha=alpha, seed=structure_seed)
    rng_weights = [(weight_seed * (i + 7)) % 29 + 1 for i in range(n)]
    for node, weight in zip(graph.nodes(), rng_weights):
        graph.nodes[node]["weight"] = weight
    return graph


SLOW = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestDeterministicAlgorithmProperties:
    @SLOW
    @given(
        n=st.integers(min_value=2, max_value=45),
        alpha=st.integers(min_value=1, max_value=4),
        structure_seed=st.integers(min_value=0, max_value=10 ** 6),
        epsilon=st.sampled_from([0.1, 0.25, 0.5, 0.9]),
    )
    def test_unweighted_invariants(self, n, alpha, structure_seed, epsilon):
        graph = random_bounded_arboricity_graph(n, alpha=alpha, seed=structure_seed)
        certified_alpha = max(1, arboricity_upper_bound(graph))
        result = solve_mds(graph, alpha=certified_alpha, epsilon=epsilon)
        assert result.is_valid
        _, opt = exact_minimum_weight_dominating_set(graph)
        assert result.weight <= result.guarantee * opt + 1e-9
        packing = packing_from_outputs(result.outputs)
        assert is_feasible_packing(graph, packing)
        assert packing_value_sum(packing) <= opt + 1e-6

    @SLOW
    @given(
        n=st.integers(min_value=2, max_value=40),
        alpha=st.integers(min_value=1, max_value=3),
        weight_seed=st.integers(min_value=1, max_value=10 ** 6),
        structure_seed=st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_weighted_invariants(self, n, alpha, weight_seed, structure_seed):
        graph = _random_weighted_graph(n, alpha, weight_seed, structure_seed)
        certified_alpha = max(1, arboricity_upper_bound(graph))
        result = solve_weighted_mds(graph, alpha=certified_alpha, epsilon=0.3)
        assert result.is_valid
        _, opt = exact_minimum_weight_dominating_set(graph)
        assert result.weight <= result.guarantee * opt + 1e-9

    @SLOW
    @given(
        n=st.integers(min_value=2, max_value=40),
        structure_seed=st.integers(min_value=0, max_value=10 ** 6),
        run_seed=st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_randomized_always_dominating(self, n, structure_seed, run_seed):
        """Theorem 1.2's domination guarantee is deterministic even though the
        weight guarantee is in expectation."""
        graph = random_bounded_arboricity_graph(n, alpha=2, seed=structure_seed)
        certified_alpha = max(1, arboricity_upper_bound(graph))
        result = solve_mds_randomized(graph, alpha=certified_alpha, t=2, seed=run_seed)
        assert result.is_valid
        assert not any(output.get("fallback_join") for output in result.outputs.values())

    @SLOW
    @given(
        n=st.integers(min_value=3, max_value=35),
        p=st.sampled_from([0.1, 0.3, 0.6]),
        seed=st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_works_on_arbitrary_graphs_with_certified_alpha(self, n, p, seed):
        """The guarantee degrades with alpha but never breaks, even on dense graphs."""
        graph = nx.gnp_random_graph(n, p, seed=seed)
        certified_alpha = max(1, arboricity_upper_bound(graph))
        result = solve_mds(graph, alpha=certified_alpha, epsilon=0.4)
        assert result.is_valid
        _, opt = exact_minimum_weight_dominating_set(graph)
        assert result.weight <= result.guarantee * opt + 1e-9


class TestCrossEngineProperties:
    """Both engines satisfy the paper's invariants on arbitrary random inputs,
    and they satisfy them *identically*."""

    @SLOW
    @given(
        n=st.integers(min_value=2, max_value=45),
        alpha=st.integers(min_value=1, max_value=4),
        weight_seed=st.integers(min_value=0, max_value=10 ** 6),
        structure_seed=st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_both_engines_dominate_and_report_true_weight(
        self, n, alpha, weight_seed, structure_seed
    ):
        """For random (possibly weighted) graphs: each engine's output is a
        verified dominating set, the reported weight matches a recomputation
        from the raw per-node outputs, and the engines agree exactly."""
        if weight_seed:
            graph = _random_weighted_graph(n, alpha, weight_seed, structure_seed)
        else:
            graph = random_bounded_arboricity_graph(n, alpha=alpha, seed=structure_seed)
        certified_alpha = max(1, arboricity_upper_bound(graph))
        results = {
            engine: solve_weighted_mds(
                graph, alpha=certified_alpha, epsilon=0.3, engine=engine
            )
            for engine in universal_engines()
        }
        for engine, result in results.items():
            assert result.is_valid, engine
            assert is_dominating_set(graph, result.dominating_set), engine
            # The reported weight must match recomputation from the outputs.
            from_outputs = {
                node for node, out in result.outputs.items() if out.get("in_ds")
            }
            assert from_outputs == result.dominating_set, engine
            assert result.weight == dominating_set_weight(graph, from_outputs), engine
        reference = results["reference"]
        for engine, result in results.items():
            assert result.dominating_set == reference.dominating_set, engine
            assert result.weight == reference.weight, engine
            assert result.rounds == reference.rounds, engine
            assert result.metrics.total_messages == reference.metrics.total_messages

    @SLOW
    @given(
        n=st.integers(min_value=2, max_value=40),
        structure_seed=st.integers(min_value=0, max_value=10 ** 6),
        run_seed=st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_randomized_engines_agree_on_random_graphs(
        self, n, structure_seed, run_seed
    ):
        graph = random_bounded_arboricity_graph(n, alpha=2, seed=structure_seed)
        certified_alpha = max(1, arboricity_upper_bound(graph))
        results = {
            engine: solve_mds_randomized(
                graph, alpha=certified_alpha, t=2, seed=run_seed, engine=engine
            )
            for engine in universal_engines()
        }
        for result in results.values():
            assert result.is_valid
        reference = results["reference"]
        for engine, result in results.items():
            assert result.dominating_set == reference.dominating_set, engine
            assert result.metrics.total_bits == reference.metrics.total_bits, engine


class TestSimulatorDeterminism:
    @SLOW
    @given(
        n=st.integers(min_value=2, max_value=35),
        structure_seed=st.integers(min_value=0, max_value=10 ** 6),
        run_seed=st.integers(min_value=0, max_value=10 ** 6),
    )
    def test_same_seed_same_run(self, n, structure_seed, run_seed):
        graph = random_bounded_arboricity_graph(n, alpha=2, seed=structure_seed)
        algorithm = WeightedMDSAlgorithm(epsilon=0.3)
        first = run_algorithm(graph, algorithm, alpha=2, seed=run_seed)
        second = run_algorithm(graph, algorithm, alpha=2, seed=run_seed)
        assert first.selected_nodes() == second.selected_nodes()
        assert first.rounds == second.rounds
