"""Tests for Observation A.1: the single-round forest 3-approximation."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_minimum_dominating_set
from repro.congest.simulator import run_algorithm
from repro.core.trees import ForestMDSAlgorithm
from repro.graphs.generators import caterpillar_graph, random_forest, random_tree
from repro.graphs.validation import is_dominating_set


def _solve(graph):
    return run_algorithm(graph, ForestMDSAlgorithm())


class TestCorrectness:
    def test_path(self):
        path = nx.path_graph(7)
        result = _solve(path)
        assert is_dominating_set(path, result.selected_nodes())
        assert result.selected_nodes() == {1, 2, 3, 4, 5}

    def test_star(self):
        star = nx.star_graph(9)
        result = _solve(star)
        assert result.selected_nodes() == {0}

    def test_single_node(self):
        graph = nx.empty_graph(1)
        assert _solve(graph).selected_nodes() == {0}

    def test_single_edge_picks_exactly_one(self):
        graph = nx.path_graph(2)
        result = _solve(graph)
        assert len(result.selected_nodes()) == 1
        assert is_dominating_set(graph, result.selected_nodes())

    def test_isolated_nodes_join(self):
        graph = nx.empty_graph(5)
        assert _solve(graph).selected_nodes() == set(range(5))

    def test_forest_with_mixed_components(self):
        graph = nx.disjoint_union(nx.path_graph(2), nx.star_graph(4))
        graph = nx.disjoint_union(graph, nx.empty_graph(1))
        result = _solve(graph)
        assert is_dominating_set(graph, result.selected_nodes())

    def test_random_forest(self):
        graph = random_forest(60, tree_count=5, seed=4)
        result = _solve(graph)
        assert is_dominating_set(graph, result.selected_nodes())


class TestApproximation:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_three_approximation_on_random_trees(self, seed):
        graph = random_tree(50, seed=seed)
        result = _solve(graph)
        _, opt = exact_minimum_dominating_set(graph)
        assert len(result.selected_nodes()) <= 3 * opt

    def test_caterpillar_worst_case_stays_within_three(self):
        graph = caterpillar_graph(15, legs_per_node=1)
        result = _solve(graph)
        _, opt = exact_minimum_dominating_set(graph)
        assert len(result.selected_nodes()) <= 3 * opt

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10 ** 6))
    def test_property_three_approximation(self, n, seed):
        graph = random_tree(n, seed=seed)
        result = _solve(graph)
        selected = result.selected_nodes()
        assert is_dominating_set(graph, selected)
        _, opt = exact_minimum_dominating_set(graph)
        assert len(selected) <= 3 * opt


class TestRoundComplexity:
    def test_at_most_one_communication_round(self, small_tree):
        result = _solve(small_tree)
        # One round carries messages; the second is the silent local decision.
        assert result.rounds <= 2
        assert all(metrics.messages == 0 for metrics in result.metrics.per_round[1:])

    def test_isolated_graph_needs_no_communication(self):
        result = _solve(nx.empty_graph(4))
        assert result.metrics.total_messages == 0
