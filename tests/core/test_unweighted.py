"""Tests for Theorem 3.1: the unweighted deterministic algorithm."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.baselines.exact import exact_minimum_dominating_set
from repro.congest.simulator import run_algorithm
from repro.core.packing import is_feasible_packing, packing_from_outputs, packing_value_sum
from repro.core.unweighted import UnweightedMDSAlgorithm
from repro.graphs.generators import star_of_cliques
from repro.graphs.validation import is_dominating_set


def _solve(graph, alpha, epsilon=0.2, seed=0):
    algorithm = UnweightedMDSAlgorithm(epsilon=epsilon)
    result = run_algorithm(graph, algorithm, alpha=alpha, seed=seed)
    return algorithm, result


class TestCorrectness:
    def test_output_is_dominating_set(self, unweighted_instances):
        for instance in unweighted_instances:
            _, result = _solve(instance.graph, alpha=instance.alpha)
            assert is_dominating_set(instance.graph, result.selected_nodes()), instance.name

    def test_single_node_graph(self):
        graph = nx.empty_graph(1)
        _, result = _solve(graph, alpha=1)
        assert result.selected_nodes() == {0}

    def test_single_edge_graph(self):
        graph = nx.path_graph(2)
        _, result = _solve(graph, alpha=1)
        assert is_dominating_set(graph, result.selected_nodes())

    def test_star_graph_small_solution(self):
        star = nx.star_graph(30)
        _, result = _solve(star, alpha=1)
        assert is_dominating_set(star, result.selected_nodes())
        # OPT is 1 (the hub); the guarantee allows (2*1+1)*(1.2) = 3.6.
        assert len(result.selected_nodes()) <= 3

    def test_disconnected_graph(self):
        graph = nx.disjoint_union(nx.path_graph(5), nx.cycle_graph(6))
        graph.add_node(99)
        _, result = _solve(graph, alpha=2)
        assert is_dominating_set(graph, result.selected_nodes())

    def test_rejects_weighted_input(self, weighted_forest_union):
        with pytest.raises(ValueError):
            _solve(weighted_forest_union, alpha=3)


class TestApproximationGuarantee:
    @pytest.mark.parametrize("epsilon", [0.1, 0.3, 0.5])
    def test_ratio_within_guarantee_on_suite(self, unweighted_instances, epsilon):
        for instance in unweighted_instances:
            algorithm, result = _solve(instance.graph, alpha=instance.alpha, epsilon=epsilon)
            _, opt = exact_minimum_dominating_set(instance.graph)
            guarantee = algorithm.approximation_guarantee(instance.alpha)
            assert len(result.selected_nodes()) <= guarantee * opt + 1e-9, instance.name

    def test_guarantee_formula(self):
        algorithm = UnweightedMDSAlgorithm(epsilon=0.5)
        assert algorithm.approximation_guarantee(2) == pytest.approx(5 * 1.5)

    def test_packing_certificate(self, small_forest_union):
        _, result = _solve(small_forest_union, alpha=3)
        packing = packing_from_outputs(result.outputs)
        assert is_feasible_packing(small_forest_union, packing)
        # Weak duality: the packing sum is at most OPT (Lemma 2.1).
        _, opt = exact_minimum_dominating_set(small_forest_union)
        assert packing_value_sum(packing) <= opt + 1e-6

    def test_size_bounded_by_guarantee_times_packing_sum(self, small_forest_union):
        """|S u T| <= (2a+1)(1+eps) * sum_v x_v -- the inequality inside Claim 3.3."""
        epsilon = 0.2
        alpha = 3
        algorithm, result = _solve(small_forest_union, alpha=alpha, epsilon=epsilon)
        packing = packing_from_outputs(result.outputs)
        bound = algorithm.approximation_guarantee(alpha) * packing_value_sum(packing)
        assert len(result.selected_nodes()) <= bound + 1e-6

    def test_deterministic_output(self, small_forest_union):
        _, first = _solve(small_forest_union, alpha=3, seed=1)
        _, second = _solve(small_forest_union, alpha=3, seed=99)
        assert first.selected_nodes() == second.selected_nodes()


class TestRoundComplexity:
    def test_round_bound_formula(self, small_ba):
        epsilon = 0.2
        _, result = _solve(small_ba, alpha=3, epsilon=epsilon)
        max_degree = max(dict(small_ba.degree()).values())
        r_bound = math.log((max_degree + 1)) / math.log(1 + epsilon) + 2
        assert result.rounds <= 2 * r_bound + 6

    def test_rounds_grow_with_delta_not_n(self):
        # Two graphs with identical max degree (grids: Delta = 4) but very
        # different sizes must take exactly the same number of rounds, since
        # the schedule depends only on Delta, alpha and epsilon.
        from repro.graphs.generators import grid_graph

        small = grid_graph(5, 6)
        large = grid_graph(20, 22)
        _, result_small = _solve(small, alpha=2)
        _, result_large = _solve(large, alpha=2)
        assert result_small.rounds == result_large.rounds

    def test_rounds_decrease_with_larger_epsilon(self, small_ba):
        _, tight = _solve(small_ba, alpha=3, epsilon=0.05)
        _, loose = _solve(small_ba, alpha=3, epsilon=0.5)
        assert loose.rounds < tight.rounds

    def test_high_degree_low_arboricity(self):
        # A star of cliques has Delta >> alpha; rounds must track log(Delta).
        graph = star_of_cliques(10, 4)
        _, result = _solve(graph, alpha=3, epsilon=0.3)
        assert is_dominating_set(graph, result.selected_nodes())
        max_degree = max(dict(graph.degree()).values())
        assert result.rounds <= 2 * (math.log(max_degree + 1) / math.log(1.3) + 2) + 6
