"""Tests for Theorem 1.1: the deterministic weighted algorithm."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines.exact import exact_minimum_weight_dominating_set
from repro.congest.simulator import run_algorithm
from repro.core.packing import is_feasible_packing, packing_from_outputs, packing_value_sum
from repro.core.weighted import WeightedMDSAlgorithm
from repro.graphs.generators import forest_union_graph, random_tree
from repro.graphs.validation import dominating_set_weight, is_dominating_set
from repro.graphs.weights import (
    assign_adversarial_weights,
    assign_degree_weights,
    assign_inverse_degree_weights,
    assign_random_weights,
)


def _solve(graph, alpha, epsilon=0.2, seed=0, lambda_value=None):
    algorithm = WeightedMDSAlgorithm(epsilon=epsilon, lambda_value=lambda_value)
    result = run_algorithm(graph, algorithm, alpha=alpha, seed=seed)
    return algorithm, result


def _weight_schemes(graph, seed):
    yield "random", lambda: assign_random_weights(graph, 1, 40, seed=seed)
    yield "degree", lambda: assign_degree_weights(graph)
    yield "inverse-degree", lambda: assign_inverse_degree_weights(graph, scale=60)
    yield "adversarial", lambda: assign_adversarial_weights(graph, 0.4, 200, seed=seed)


class TestCorrectness:
    def test_valid_on_weighted_instances(self, weighted_instances):
        for instance in weighted_instances:
            _, result = _solve(instance.graph, alpha=instance.alpha)
            assert is_dominating_set(instance.graph, result.selected_nodes()), instance.name

    @pytest.mark.parametrize("scheme_index", [0, 1, 2, 3])
    def test_valid_under_every_weight_scheme(self, scheme_index):
        graph = forest_union_graph(45, alpha=3, seed=5)
        schemes = list(_weight_schemes(graph, seed=scheme_index))
        name, apply_weights = schemes[scheme_index]
        apply_weights()
        _, result = _solve(graph, alpha=3)
        assert is_dominating_set(graph, result.selected_nodes()), name

    def test_isolated_weighted_node(self):
        graph = nx.Graph()
        graph.add_node(0, weight=17)
        _, result = _solve(graph, alpha=1)
        assert result.selected_nodes() == {0}

    def test_two_node_weighted_graph_picks_cheaper(self):
        graph = nx.Graph()
        graph.add_node(0, weight=100)
        graph.add_node(1, weight=1)
        graph.add_edge(0, 1)
        _, result = _solve(graph, alpha=1)
        selected = result.selected_nodes()
        assert is_dominating_set(graph, selected)
        assert dominating_set_weight(graph, selected) <= 2


class TestApproximationGuarantee:
    @pytest.mark.parametrize("epsilon", [0.1, 0.4])
    def test_ratio_within_guarantee(self, weighted_instances, epsilon):
        for instance in weighted_instances:
            algorithm, result = _solve(instance.graph, alpha=instance.alpha, epsilon=epsilon)
            _, opt = exact_minimum_weight_dominating_set(instance.graph)
            weight = dominating_set_weight(instance.graph, result.selected_nodes())
            assert weight <= algorithm.approximation_guarantee(instance.alpha) * opt + 1e-9

    def test_weight_aware_beats_expensive_hubs(self):
        """With expensive internal nodes, the weighted algorithm avoids them."""
        graph = random_tree(60, seed=3)
        assign_adversarial_weights(graph, expensive_fraction=1.0, expensive=1000, seed=1)
        _, result = _solve(graph, alpha=1, epsilon=0.2)
        weight = dominating_set_weight(graph, result.selected_nodes())
        _, opt = exact_minimum_weight_dominating_set(graph)
        assert weight <= 3 * 1.2 * opt

    def test_packing_certificate_and_duality(self, weighted_forest_union):
        _, result = _solve(weighted_forest_union, alpha=3)
        packing = packing_from_outputs(result.outputs)
        assert is_feasible_packing(weighted_forest_union, packing)
        _, opt = exact_minimum_weight_dominating_set(weighted_forest_union)
        assert packing_value_sum(packing) <= opt + 1e-6

    def test_weight_bounded_by_guarantee_times_packing_sum(self, weighted_forest_union):
        epsilon = 0.25
        alpha = 3
        algorithm, result = _solve(weighted_forest_union, alpha=alpha, epsilon=epsilon)
        packing = packing_from_outputs(result.outputs)
        weight = dominating_set_weight(weighted_forest_union, result.selected_nodes())
        assert weight <= algorithm.approximation_guarantee(alpha) * packing_value_sum(packing) + 1e-6

    def test_custom_lambda_still_valid(self, weighted_forest_union):
        _, result = _solve(weighted_forest_union, alpha=3, lambda_value=0.02)
        assert is_dominating_set(weighted_forest_union, result.selected_nodes())


class TestExtensionStep:
    def test_cheapest_dominator_prefers_self_on_ties(self, small_tree):
        algorithm, result = _solve(small_tree, alpha=1)
        # With unit weights every tau is 1, so every undominated node selects
        # itself; hence every extension node was undominated after the partial
        # phase.
        for node, output in result.outputs.items():
            if output["in_extension"]:
                assert not output["dominated_by_partial"]

    def test_extension_node_has_minimum_weight(self, weighted_forest_union):
        graph = weighted_forest_union
        _, result = _solve(graph, alpha=3)
        outputs = result.outputs
        for node, output in outputs.items():
            if output["dominated_by_partial"] or output["in_partial"]:
                continue
            # The undominated node's tau must equal the weight of some chosen
            # node in its closed neighborhood.
            neighborhood = set(graph.neighbors(node)) | {node}
            chosen = [v for v in neighborhood if outputs[v]["in_ds"]]
            assert chosen, f"undominated node {node} has no dominator"
            assert min(graph.nodes[v].get("weight", 1) for v in chosen) <= output["tau"]

    def test_rounds_overhead_of_extension_is_constant(self, small_forest_union):
        from repro.core.partial import PartialDominatingSet

        partial = run_algorithm(small_forest_union, PartialDominatingSet(epsilon=0.2), alpha=3)
        _, full = _solve(small_forest_union, alpha=3, epsilon=0.2)
        assert full.rounds - partial.rounds <= 2
