"""Tests for the Lemma 4.1 partial dominating set phase.

These tests check the two properties of Lemma 4.1 directly on executions:

(a) ``w_S <= alpha * (1/(1+eps) - lambda*(alpha+1))^{-1} * sum_{v in N+(S)} x_v``
(b) every node left undominated has ``x_v >= lambda * tau_v``,

together with packing feasibility (Observation 4.2) and the complementary
bound of Observation 4.3 (dominated nodes have ``x_v <= lambda * tau_v``).
"""

from __future__ import annotations

import math

import pytest

from repro.congest.simulator import run_algorithm
from repro.core.packing import is_feasible_packing, packing_from_outputs
from repro.core.partial import (
    PartialDominatingSet,
    partial_iteration_count,
    theorem11_lambda,
)
from repro.graphs.validation import closed_neighborhood
from repro.graphs.weights import node_weight


class TestIterationCount:
    def test_zero_when_lambda_below_uniform_start(self):
        assert partial_iteration_count(max_degree=10, epsilon=0.5, lambda_value=0.01) == 0

    def test_one_iteration_when_just_above(self):
        # start = 1/11; lambda slightly above it needs exactly one iteration.
        assert partial_iteration_count(max_degree=10, epsilon=0.5, lambda_value=0.1) == 1

    def test_monotone_in_lambda(self):
        low = partial_iteration_count(100, 0.2, 0.05)
        high = partial_iteration_count(100, 0.2, 0.5)
        assert low <= high

    def test_scales_inverse_with_epsilon(self):
        fine = partial_iteration_count(1000, 0.05, 0.2)
        coarse = partial_iteration_count(1000, 0.5, 0.2)
        assert fine > coarse

    def test_logarithmic_in_degree(self):
        r = partial_iteration_count(10 ** 5, 0.3, 0.2)
        assert r <= math.log(10 ** 5 + 1) / math.log(1.3) + 2

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            partial_iteration_count(10, 0.0, 0.1)

    def test_theorem11_lambda_value(self):
        assert theorem11_lambda(2, 0.25) == pytest.approx(1.0 / (5 * 1.25))


def _run_partial(graph, alpha, epsilon=0.2, lambda_value=None):
    algorithm = PartialDominatingSet(epsilon=epsilon, lambda_value=lambda_value)
    result = run_algorithm(graph, algorithm, alpha=alpha)
    return algorithm, result


class TestLemma41Properties:
    @pytest.mark.parametrize("epsilon", [0.1, 0.3, 0.6])
    def test_packing_feasible(self, small_forest_union, epsilon):
        _, result = _run_partial(small_forest_union, alpha=3, epsilon=epsilon)
        packing = packing_from_outputs(result.outputs)
        assert is_feasible_packing(small_forest_union, packing)

    def test_property_b_undominated_nodes(self, small_forest_union):
        epsilon = 0.2
        alpha = 3
        lam = theorem11_lambda(alpha, epsilon)
        _, result = _run_partial(small_forest_union, alpha=alpha, epsilon=epsilon)
        for node, output in result.outputs.items():
            if not output["dominated_by_partial"]:
                assert output["x_partial"] >= lam * output["tau"] - 1e-12

    def test_observation_43_dominated_nodes(self, small_forest_union):
        epsilon = 0.2
        alpha = 3
        lam = theorem11_lambda(alpha, epsilon)
        _, result = _run_partial(small_forest_union, alpha=alpha, epsilon=epsilon)
        for node, output in result.outputs.items():
            if output["dominated_by_partial"]:
                assert output["x_partial"] <= lam * output["tau"] + 1e-12

    def test_property_a_weight_bound(self, weighted_forest_union):
        epsilon = 0.25
        alpha = 3
        lam = theorem11_lambda(alpha, epsilon)
        _, result = _run_partial(weighted_forest_union, alpha=alpha, epsilon=epsilon)
        graph = weighted_forest_union
        partial_set = {node for node, output in result.outputs.items() if output["in_partial"]}
        dominated_by_s = set()
        for node in partial_set:
            dominated_by_s.update(closed_neighborhood(graph, node))
        packing = packing_from_outputs(result.outputs)
        covered_packing = sum(packing[node] for node in dominated_by_s)
        weight_s = sum(node_weight(graph, node) for node in partial_set)
        factor = alpha / (1.0 / (1.0 + epsilon) - lam * (alpha + 1))
        assert weight_s <= factor * covered_packing + 1e-6

    def test_tau_is_min_weight_in_closed_neighborhood(self, weighted_forest_union):
        _, result = _run_partial(weighted_forest_union, alpha=3)
        graph = weighted_forest_union
        for node, output in result.outputs.items():
            expected = min(node_weight(graph, member) for member in closed_neighborhood(graph, node))
            assert output["tau"] == expected

    def test_partial_set_members_are_dominated(self, small_forest_union):
        _, result = _run_partial(small_forest_union, alpha=3)
        for node, output in result.outputs.items():
            if output["in_partial"]:
                assert output["dominated_by_partial"]

    def test_no_extension_nodes(self, small_forest_union):
        _, result = _run_partial(small_forest_union, alpha=3)
        assert all(not output["in_extension"] for output in result.outputs.values())

    def test_tiny_lambda_gives_empty_partial_set(self, small_forest_union):
        _, result = _run_partial(small_forest_union, alpha=3, lambda_value=1e-9)
        assert all(not output["in_partial"] for output in result.outputs.values())
        # With r = 0 the run is only the weight exchange plus the finalize round.
        assert result.rounds <= 3

    def test_round_complexity_scales_with_log_delta_over_eps(self, small_ba):
        fast = _run_partial(small_ba, alpha=3, epsilon=0.5)[1]
        slow = _run_partial(small_ba, alpha=3, epsilon=0.05)[1]
        assert fast.rounds < slow.rounds
        max_degree = max(dict(small_ba.degree()).values())
        bound = 2 * (math.log(max_degree + 1) / math.log(1.05) + 2) + 4
        assert slow.rounds <= bound

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            PartialDominatingSet(epsilon=0.0)
        with pytest.raises(ValueError):
            PartialDominatingSet(epsilon=1.0)

    def test_missing_alpha_raises(self, small_tree):
        algorithm = PartialDominatingSet(epsilon=0.2)
        with pytest.raises(ValueError):
            run_algorithm(small_tree, algorithm, alpha=None)

    def test_weighted_instance_respects_properties(self, weighted_forest_union):
        epsilon = 0.3
        alpha = 3
        lam = theorem11_lambda(alpha, epsilon)
        _, result = _run_partial(weighted_forest_union, alpha=alpha, epsilon=epsilon)
        packing = packing_from_outputs(result.outputs)
        assert is_feasible_packing(weighted_forest_union, packing)
        for node, output in result.outputs.items():
            if not output["dominated_by_partial"]:
                assert output["x_partial"] >= lam * output["tau"] - 1e-12
