"""CONGEST-model compliance of every algorithm in the repository.

Every message sent by the paper's algorithms must fit in ``O(log n)`` bits.
The simulator enforces this in strict mode; these tests run every algorithm
on a common instance and assert that no violation occurs and that the largest
observed message is well within the budget.
"""

from __future__ import annotations

import pytest

from repro.baselines.lenzen_wattenhofer import LWDeterministicAlgorithm, LWRandomizedAlgorithm
from repro.baselines.msw import MSWStyleAlgorithm
from repro.congest.simulator import run_algorithm
from repro.core.general_graphs import GeneralGraphMDSAlgorithm
from repro.core.randomized import RandomizedMDSAlgorithm
from repro.core.trees import ForestMDSAlgorithm
from repro.core.unknown_params import UnknownArboricityMDSAlgorithm, UnknownDegreeMDSAlgorithm
from repro.core.unweighted import UnweightedMDSAlgorithm
from repro.core.weighted import WeightedMDSAlgorithm
from repro.graphs.generators import forest_union_graph
from repro.graphs.weights import assign_random_weights


CONGEST_ALGORITHMS = [
    ("theorem-3.1", lambda: UnweightedMDSAlgorithm(epsilon=0.2), False),
    ("theorem-1.1", lambda: WeightedMDSAlgorithm(epsilon=0.2), True),
    ("theorem-1.2", lambda: RandomizedMDSAlgorithm(t=2), True),
    ("theorem-1.3", lambda: GeneralGraphMDSAlgorithm(k=2), True),
    ("observation-a.1", lambda: ForestMDSAlgorithm(), False),
    ("lw-deterministic", lambda: LWDeterministicAlgorithm(), False),
    ("lw-randomized", lambda: LWRandomizedAlgorithm(), False),
    ("combinatorial-baseline", lambda: MSWStyleAlgorithm(), False),
]


@pytest.mark.parametrize("label,factory,weighted", CONGEST_ALGORITHMS)
def test_messages_fit_in_congest_budget(label, factory, weighted):
    graph = forest_union_graph(70, alpha=3, seed=17)
    if weighted:
        assign_random_weights(graph, 1, 50, seed=23)
    # Strict mode: any oversized message raises BandwidthViolation.
    result = run_algorithm(graph, factory(), alpha=3, seed=3, strict=True)
    budget = result.metrics.bandwidth_budget_bits
    assert budget > 0
    assert result.metrics.max_message_bits <= budget
    # Messages must stay tiny in absolute terms too: a handful of scalars.
    assert result.metrics.max_message_bits <= 16 * 16


@pytest.mark.parametrize(
    "label,factory",
    [
        ("remark-4.4", lambda: UnknownDegreeMDSAlgorithm(epsilon=0.25)),
        ("remark-4.5", lambda: UnknownArboricityMDSAlgorithm(epsilon=0.3)),
    ],
)
def test_unknown_parameter_variants_fit_in_budget(label, factory):
    graph = forest_union_graph(50, alpha=2, seed=29)
    assign_random_weights(graph, 1, 40, seed=31)
    alpha = 2 if label == "remark-4.4" else None
    result = run_algorithm(
        graph, factory(), alpha=alpha, seed=1, strict=True, knows_max_degree=False
    )
    assert result.metrics.max_message_bits <= result.metrics.bandwidth_budget_bits


def test_per_round_message_count_bounded_by_twice_edges():
    """No node ever sends more than one message per edge per round."""
    graph = forest_union_graph(60, alpha=3, seed=37)
    result = run_algorithm(graph, UnweightedMDSAlgorithm(epsilon=0.3), alpha=3)
    for round_metrics in result.metrics.per_round:
        assert round_metrics.messages <= 2 * graph.number_of_edges()
