"""Tests for packing values and the weak-duality certificate (Section 2)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.packing import (
    certified_lower_bound,
    is_feasible_packing,
    neighborhood_load,
    packing_from_outputs,
    packing_value_sum,
)
from repro.graphs.weights import assign_uniform_weights


@pytest.fixture
def path():
    return nx.path_graph(4)


class TestFeasibility:
    def test_zero_packing_always_feasible(self, path):
        assert is_feasible_packing(path, {node: 0.0 for node in path.nodes()})

    def test_uniform_initialisation_is_feasible(self, path):
        # x_v = 1/(Delta+1) with Delta = 2.
        packing = {node: 1.0 / 3.0 for node in path.nodes()}
        assert is_feasible_packing(path, packing)

    def test_overloaded_neighborhood_detected(self, path):
        packing = {node: 0.6 for node in path.nodes()}
        assert not is_feasible_packing(path, packing)

    def test_negative_values_rejected(self, path):
        packing = {node: 0.0 for node in path.nodes()}
        packing[0] = -0.5
        assert not is_feasible_packing(path, packing)

    def test_respects_node_weights(self, path):
        assign_uniform_weights(path, weight=10)
        packing = {node: 2.0 for node in path.nodes()}
        assert is_feasible_packing(path, packing)

    def test_tolerance_absorbs_rounding(self, path):
        packing = {node: (1.0 / 3.0) * (1 + 1e-12) for node in path.nodes()}
        assert is_feasible_packing(path, packing)

    def test_missing_nodes_count_as_zero(self, path):
        assert is_feasible_packing(path, {0: 0.5})


class TestLoadsAndSums:
    def test_neighborhood_load(self, path):
        packing = {0: 0.1, 1: 0.2, 2: 0.3, 3: 0.4}
        assert neighborhood_load(path, packing, 1) == pytest.approx(0.6)

    def test_packing_value_sum(self):
        assert packing_value_sum({0: 0.5, 1: 1.5}) == 2.0

    def test_certified_lower_bound_feasible(self, path):
        packing = {node: 0.25 for node in path.nodes()}
        assert certified_lower_bound(path, packing) == pytest.approx(1.0)

    def test_certified_lower_bound_rejects_infeasible(self, path):
        with pytest.raises(ValueError):
            certified_lower_bound(path, {node: 1.0 for node in path.nodes()})


class TestExtraction:
    def test_packing_from_outputs(self):
        outputs = {0: {"x_partial": 0.5, "in_ds": True}, 1: {"x_partial": 0.25}}
        assert packing_from_outputs(outputs) == {0: 0.5, 1: 0.25}

    def test_missing_key_defaults_to_zero(self):
        outputs = {0: {"in_ds": True}, 1: {"x_partial": 0.75}}
        assert packing_from_outputs(outputs) == {0: 0.0, 1: 0.75}

    def test_non_mapping_outputs_default_to_zero(self):
        assert packing_from_outputs({0: True, 1: {"x_partial": 0.5}}) == {0: 0.0, 1: 0.5}

    def test_alternate_key(self):
        outputs = {0: {"x": 0.125}}
        assert packing_from_outputs(outputs, key="x") == {0: 0.125}
