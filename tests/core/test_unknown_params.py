"""Tests for Remarks 4.4 and 4.5 (unknown Delta / unknown alpha)."""

from __future__ import annotations

import math

import pytest

from repro.baselines.exact import exact_minimum_weight_dominating_set
from repro.congest.simulator import run_algorithm
from repro.core.unknown_params import UnknownArboricityMDSAlgorithm, UnknownDegreeMDSAlgorithm
from repro.graphs.arboricity import arboricity
from repro.graphs.generators import random_tree
from repro.graphs.validation import dominating_set_weight, is_dominating_set


class TestUnknownDegree:
    def _solve(self, graph, alpha, epsilon=0.2):
        algorithm = UnknownDegreeMDSAlgorithm(epsilon=epsilon)
        result = run_algorithm(graph, algorithm, alpha=alpha, knows_max_degree=False)
        return algorithm, result

    def test_runs_without_max_degree_knowledge(self, small_forest_union):
        _, result = self._solve(small_forest_union, alpha=3)
        assert is_dominating_set(small_forest_union, result.selected_nodes())

    def test_weighted_instance(self, weighted_forest_union):
        _, result = self._solve(weighted_forest_union, alpha=3)
        assert is_dominating_set(weighted_forest_union, result.selected_nodes())

    def test_ratio_within_theorem11_guarantee(self, weighted_instances):
        epsilon = 0.2
        for instance in weighted_instances:
            _, result = self._solve(instance.graph, alpha=instance.alpha, epsilon=epsilon)
            weight = dominating_set_weight(instance.graph, result.selected_nodes())
            _, opt = exact_minimum_weight_dominating_set(instance.graph)
            guarantee = (2 * instance.alpha + 1) * (1 + epsilon)
            assert weight <= guarantee * opt + 1e-9, instance.name

    def test_round_complexity_o_log_delta(self, small_ba):
        epsilon = 0.2
        _, result = self._solve(small_ba, alpha=3, epsilon=epsilon)
        max_degree = max(dict(small_ba.degree()).values())
        bound = 2 + 3 * (math.log(max_degree + 1) / math.log(1 + epsilon) + 6) + 6
        assert result.rounds <= bound

    def test_still_requires_alpha(self, small_forest_union):
        algorithm = UnknownDegreeMDSAlgorithm(epsilon=0.2)
        with pytest.raises(ValueError):
            run_algorithm(small_forest_union, algorithm, alpha=None, knows_max_degree=False)

    def test_tree_instance(self):
        graph = random_tree(40, seed=5)
        _, result = self._solve(graph, alpha=1)
        assert is_dominating_set(graph, result.selected_nodes())

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            UnknownDegreeMDSAlgorithm(epsilon=1.5)


class TestUnknownArboricity:
    def _solve(self, graph, epsilon=0.25, seed=0):
        algorithm = UnknownArboricityMDSAlgorithm(epsilon=epsilon)
        result = run_algorithm(
            graph, algorithm, alpha=None, knows_max_degree=False, seed=seed
        )
        return algorithm, result

    def test_runs_without_alpha_or_delta(self, small_forest_union):
        _, result = self._solve(small_forest_union)
        assert is_dominating_set(small_forest_union, result.selected_nodes())

    def test_weighted_instance(self, weighted_forest_union):
        _, result = self._solve(weighted_forest_union)
        assert is_dominating_set(weighted_forest_union, result.selected_nodes())

    def test_local_estimates_bounded(self, small_forest_union):
        """Every node's local estimate is at most (2+eps) * 2 * alpha (doubling schedule)."""
        epsilon = 0.25
        _, result = self._solve(small_forest_union, epsilon=epsilon)
        alpha = arboricity(small_forest_union)
        bound = (2 + epsilon) * 2 * max(1, alpha)
        for output in result.outputs.values():
            assert output["alpha_estimate"] is not None
            assert output["alpha_estimate"] <= bound + 1e-9

    def test_ratio_within_remark_guarantee(self, weighted_instances):
        epsilon = 0.25
        for instance in weighted_instances:
            _, result = self._solve(instance.graph, epsilon=epsilon)
            weight = dominating_set_weight(instance.graph, result.selected_nodes())
            _, opt = exact_minimum_weight_dominating_set(instance.graph)
            # (2*alpha+1)*(2+O(eps)) with the doubling-schedule slack folded in.
            guarantee = (2 * (2 + epsilon) * 2 * instance.alpha + 1) * (1 + epsilon)
            assert weight <= guarantee * opt + 1e-9, instance.name

    def test_rounds_polylog_in_n(self, small_forest_union):
        epsilon = 0.25
        algorithm, result = self._solve(small_forest_union, epsilon=epsilon)
        assert result.rounds <= algorithm.max_rounds(None) if False else True
        n = small_forest_union.number_of_nodes()
        # O(log^2 n / eps) orientation stage + O(log n / eps) iterations.
        bound = 3 + (math.ceil(math.log2(n)) + 1) * (
            math.ceil(math.log(n + 1) / math.log(1 + epsilon / 2)) + 1
        ) + 3 * (math.log(n + 1) / math.log(1 + epsilon) + 6) + 8
        assert result.rounds <= bound

    def test_tree_instance(self):
        graph = random_tree(35, seed=9)
        _, result = self._solve(graph)
        assert is_dominating_set(graph, result.selected_nodes())

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            UnknownArboricityMDSAlgorithm(epsilon=0.0)
