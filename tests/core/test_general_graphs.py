"""Tests for Theorem 1.3: the general-graph randomized algorithm."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines.exact import exact_minimum_weight_dominating_set
from repro.congest.simulator import run_algorithm
from repro.core.general_graphs import GeneralGraphMDSAlgorithm
from repro.graphs.generators import star_of_cliques
from repro.graphs.validation import dominating_set_weight, is_dominating_set
from repro.graphs.weights import assign_random_weights


def _solve(graph, k=2, seed=0):
    algorithm = GeneralGraphMDSAlgorithm(k=k)
    result = run_algorithm(graph, algorithm, seed=seed)
    return algorithm, result


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_valid_on_dense_random_graph(self, k):
        graph = nx.gnp_random_graph(50, 0.2, seed=3)
        _, result = _solve(graph, k=k, seed=1)
        assert is_dominating_set(graph, result.selected_nodes())

    def test_valid_on_star_of_cliques(self):
        graph = star_of_cliques(6, 5)
        _, result = _solve(graph, k=2, seed=2)
        assert is_dominating_set(graph, result.selected_nodes())

    def test_valid_on_weighted_graph(self):
        graph = nx.gnp_random_graph(40, 0.25, seed=5)
        assign_random_weights(graph, 1, 30, seed=6)
        _, result = _solve(graph, k=2, seed=3)
        assert is_dominating_set(graph, result.selected_nodes())

    def test_does_not_need_alpha(self):
        graph = nx.complete_graph(15)
        _, result = _solve(graph, k=2, seed=0)
        assert is_dominating_set(graph, result.selected_nodes())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            GeneralGraphMDSAlgorithm(k=0)


class TestQuality:
    def test_within_guarantee_in_expectation(self):
        graph = nx.gnp_random_graph(60, 0.15, seed=7)
        _, opt = exact_minimum_weight_dominating_set(graph)
        algorithm = GeneralGraphMDSAlgorithm(k=2)
        max_degree = max(dict(graph.degree()).values())
        guarantee = algorithm.approximation_guarantee(max_degree)
        weights = []
        for seed in range(5):
            result = run_algorithm(graph, algorithm, seed=seed)
            weights.append(dominating_set_weight(graph, result.selected_nodes()))
        assert sum(weights) / len(weights) <= guarantee * opt

    def test_guarantee_formula_matches_theorem(self):
        algorithm = GeneralGraphMDSAlgorithm(k=2)
        # gamma = (Delta+1)^{1/2}; factor = gamma*(gamma+1)*(k+1).
        delta = 63
        gamma = 64 ** 0.5
        assert algorithm.approximation_guarantee(delta) == pytest.approx(gamma * (gamma + 1) * 3)


class TestRoundComplexity:
    def test_rounds_are_o_k_squared(self):
        graph = nx.gnp_random_graph(70, 0.15, seed=9)
        max_degree = max(dict(graph.degree()).values())
        for k in (1, 2, 3):
            algorithm = GeneralGraphMDSAlgorithm(k=k)
            result = run_algorithm(graph, algorithm, seed=1)
            assert result.rounds <= algorithm.expected_round_bound(max_degree)

    def test_larger_k_does_not_explode_rounds(self):
        graph = nx.gnp_random_graph(60, 0.2, seed=11)
        r1 = _solve(graph, k=1, seed=0)[1].rounds
        r3 = _solve(graph, k=3, seed=0)[1].rounds
        # k = 1 means one phase with p jumping straight to 1 (few rounds);
        # k = 3 needs about k^2 rounds; both stay tiny compared to n.
        assert r1 <= r3 <= graph.number_of_nodes()

    def test_skips_partial_phase(self):
        graph = nx.gnp_random_graph(40, 0.2, seed=13)
        _, result = _solve(graph, k=2, seed=2)
        assert all(not output["in_partial"] for output in result.outputs.values())
