"""Tests for Lemma 4.6 and Theorem 1.2: the randomized algorithm."""

from __future__ import annotations

import math

import pytest

from repro.baselines.exact import exact_minimum_weight_dominating_set
from repro.congest.simulator import run_algorithm
from repro.core.packing import is_feasible_packing, packing_from_outputs
from repro.core.randomized import (
    Lemma46Extension,
    RandomizedMDSAlgorithm,
    theorem12_parameters,
)
from repro.graphs.generators import forest_union_graph, preferential_attachment_graph
from repro.graphs.validation import dominating_set_weight, is_dominating_set
from repro.graphs.weights import assign_random_weights


def _solve(graph, alpha, t=1, seed=0):
    algorithm = RandomizedMDSAlgorithm(t=t)
    result = run_algorithm(graph, algorithm, alpha=alpha, seed=seed)
    return algorithm, result


class TestTheorem12Parameters:
    def test_epsilon_shrinks_with_t(self):
        assert theorem12_parameters(4, 4)["epsilon"] == pytest.approx(1 / 16)

    def test_lambda_depends_on_alpha(self):
        params = theorem12_parameters(5, 2)
        assert params["lambda"] == pytest.approx(params["epsilon"] / 6)

    def test_gamma_at_least_two(self):
        assert theorem12_parameters(3, 10)["gamma"] == 2.0

    def test_gamma_grows_for_large_alpha_small_t(self):
        assert theorem12_parameters(64, 1)["gamma"] == pytest.approx(8.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            theorem12_parameters(0, 1)
        with pytest.raises(ValueError):
            theorem12_parameters(3, 0)
        with pytest.raises(ValueError):
            RandomizedMDSAlgorithm(t=0)


class TestCorrectness:
    @pytest.mark.parametrize("t", [1, 2])
    def test_valid_dominating_set(self, weighted_instances, t):
        for instance in weighted_instances:
            _, result = _solve(instance.graph, alpha=instance.alpha, t=t, seed=3)
            assert is_dominating_set(instance.graph, result.selected_nodes()), instance.name

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_fallback_never_used(self, small_forest_union, seed):
        """The paper proves S u S' dominates after the scheduled phases."""
        _, result = _solve(small_forest_union, alpha=3, t=2, seed=seed)
        assert not any(output["fallback_join"] for output in result.outputs.values())

    def test_unweighted_instance(self, small_forest_union):
        _, result = _solve(small_forest_union, alpha=3, t=1, seed=7)
        assert is_dominating_set(small_forest_union, result.selected_nodes())

    def test_packing_certificate_from_partial_phase(self, weighted_forest_union):
        _, result = _solve(weighted_forest_union, alpha=3, t=2, seed=1)
        packing = packing_from_outputs(result.outputs)
        assert is_feasible_packing(weighted_forest_union, packing)

    def test_requires_alpha(self, small_forest_union):
        with pytest.raises(ValueError):
            run_algorithm(small_forest_union, RandomizedMDSAlgorithm(t=1), alpha=None)


class TestQuality:
    def test_expected_quality_within_guarantee(self):
        """Average over seeds stays below the proven expected factor."""
        graph = forest_union_graph(60, alpha=3, seed=2)
        assign_random_weights(graph, 1, 20, seed=4)
        _, opt = exact_minimum_weight_dominating_set(graph)
        algorithm = RandomizedMDSAlgorithm(t=2)
        guarantee = algorithm.approximation_guarantee(3)
        weights = []
        for seed in range(6):
            result = run_algorithm(graph, algorithm, alpha=3, seed=seed)
            weight = dominating_set_weight(graph, result.selected_nodes())
            assert is_dominating_set(graph, result.selected_nodes())
            weights.append(weight)
        assert sum(weights) / len(weights) <= guarantee * opt

    def test_better_than_two_alpha_on_average(self):
        """Theorem 1.2's point: the factor approaches alpha, not 2*alpha + 1.

        We check the measured ratio is strictly below the deterministic
        guarantee on an instance where the deterministic extension is wasteful.
        """
        graph = preferential_attachment_graph(90, attachment=3, seed=5)
        _, opt = exact_minimum_weight_dominating_set(graph)
        ratios = []
        for seed in range(4):
            _, result = _solve(graph, alpha=3, t=3, seed=seed)
            ratios.append(len(result.selected_nodes()) / opt)
        assert sum(ratios) / len(ratios) <= (2 * 3 + 1) * 1.25


class TestRoundComplexity:
    def test_rounds_grow_with_t(self, small_forest_union):
        _, fast = _solve(small_forest_union, alpha=3, t=1, seed=0)
        _, slow = _solve(small_forest_union, alpha=3, t=4, seed=0)
        assert fast.rounds < slow.rounds

    def test_round_bound_o_t_log_delta(self, small_ba):
        t = 2
        algorithm, result = _solve(small_ba, alpha=3, t=t, seed=1)
        max_degree = max(dict(small_ba.degree()).values())
        # O(t log Delta) with a generous constant; the partial phase alone is
        # 2 * log_{1+1/(4t)}(Delta+1) which dominates.
        bound = 2 * math.log(max_degree + 1) / math.log(1 + 1 / (4 * t)) + 8 * t * math.log2(max_degree + 2) + 20
        assert result.rounds <= bound


class TestLemma46Extension:
    def test_gamma_must_exceed_one(self):
        with pytest.raises(ValueError):
            Lemma46Extension(gamma=1.0)

    def test_gamma_none_requires_subclass(self, small_forest_union):
        algorithm = Lemma46Extension(epsilon=0.25, lambda_value=0.05, gamma=None)
        with pytest.raises(ValueError):
            run_algorithm(small_forest_union, algorithm, alpha=3)

    def test_explicit_gamma_runs(self, small_forest_union):
        algorithm = Lemma46Extension(epsilon=0.25, lambda_value=0.05, gamma=2.0)
        result = run_algorithm(small_forest_union, algorithm, alpha=3, seed=2)
        assert is_dominating_set(small_forest_union, result.selected_nodes())
