"""Tests for the high-level convenience API."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import (
    DominatingSetResult,
    solve_mds,
    solve_mds_forest,
    solve_mds_general,
    solve_mds_randomized,
    solve_mds_unknown_arboricity,
    solve_mds_unknown_degree,
    solve_weighted_mds,
)
from repro.congest.algorithm import SynchronousAlgorithm
from repro.core.api import solve_with_algorithm
from repro.graphs.generators import random_tree

#: This module exercises the deprecated ``solve_*`` helpers *on purpose*,
#: so the tier-1 "error on repro DeprecationWarning" filter (pytest.ini) is
#: relaxed here; the deprecation contract itself is asserted explicitly in
#: :class:`TestDeprecationContract`.
pytestmark = pytest.mark.filterwarnings("ignore:solve_")


class TestDeprecationContract:
    def test_every_legacy_helper_warns(self, small_forest_union, small_tree):
        helpers = [
            lambda: solve_mds(small_forest_union, alpha=3),
            lambda: solve_weighted_mds(small_forest_union, alpha=3),
            lambda: solve_mds_randomized(small_forest_union, alpha=3),
            lambda: solve_mds_general(small_forest_union),
            lambda: solve_mds_forest(small_tree),
            lambda: solve_mds_unknown_degree(small_forest_union, alpha=3),
            lambda: solve_mds_unknown_arboricity(small_forest_union),
        ]
        for helper in helpers:
            with pytest.warns(DeprecationWarning, match="legacy wrapper"):
                helper()


class TestSolveMds:
    def test_returns_result_dataclass(self, small_forest_union):
        result = solve_mds(small_forest_union, alpha=3)
        assert isinstance(result, DominatingSetResult)
        assert result.is_valid
        assert result.weight == len(result.dominating_set)
        assert len(result) == len(result.dominating_set)

    def test_dispatches_to_unweighted_algorithm(self, small_forest_union):
        result = solve_mds(small_forest_union, alpha=3)
        assert "unweighted" in result.algorithm

    def test_dispatches_to_weighted_algorithm(self, weighted_forest_union):
        result = solve_mds(weighted_forest_union, alpha=3)
        assert "deterministic" in result.algorithm

    def test_alpha_defaults_to_degeneracy(self, small_forest_union):
        result = solve_mds(small_forest_union)
        assert result.is_valid
        assert result.guarantee is not None

    def test_invalid_alpha_rejected(self, small_forest_union):
        with pytest.raises(ValueError):
            solve_mds(small_forest_union, alpha=0)

    def test_guarantee_reported(self, small_forest_union):
        result = solve_mds(small_forest_union, alpha=3, epsilon=0.5)
        assert result.guarantee == pytest.approx(7 * 1.5)

    def test_metrics_available(self, small_forest_union):
        result = solve_mds(small_forest_union, alpha=3)
        assert result.metrics.rounds == result.rounds
        assert result.metrics.total_messages > 0


class TestOtherSolvers:
    def test_solve_weighted(self, weighted_forest_union):
        result = solve_weighted_mds(weighted_forest_union, alpha=3)
        assert result.is_valid

    def test_solve_randomized(self, weighted_forest_union):
        result = solve_mds_randomized(weighted_forest_union, alpha=3, t=2, seed=4)
        assert result.is_valid

    def test_solve_general(self):
        graph = nx.gnp_random_graph(40, 0.2, seed=3)
        result = solve_mds_general(graph, k=2, seed=1)
        assert result.is_valid

    def test_solve_forest(self):
        graph = random_tree(30, seed=2)
        result = solve_mds_forest(graph)
        assert result.is_valid
        assert result.guarantee == 3.0
        assert result.rounds <= 2

    def test_solve_unknown_degree(self, weighted_forest_union):
        result = solve_mds_unknown_degree(weighted_forest_union, alpha=3)
        assert result.is_valid

    def test_solve_unknown_arboricity(self, small_forest_union):
        result = solve_mds_unknown_arboricity(small_forest_union)
        assert result.is_valid

    def test_results_are_reproducible(self, weighted_forest_union):
        first = solve_mds_randomized(weighted_forest_union, alpha=3, t=1, seed=11)
        second = solve_mds_randomized(weighted_forest_union, alpha=3, t=1, seed=11)
        assert first.dominating_set == second.dominating_set

    def test_different_seeds_may_differ_but_stay_valid(self, weighted_forest_union):
        for seed in range(3):
            result = solve_mds_randomized(weighted_forest_union, alpha=3, t=1, seed=seed)
            assert result.is_valid


class _SelectNobody(SynchronousAlgorithm):
    """Every node outputs ``in_ds=False`` immediately (never dominating)."""

    name = "select-nobody"

    def round(self, node, round_index, inbox):
        node.state["output"] = {"in_ds": False}
        node.finish()
        return None


class _SelectEverybody(SynchronousAlgorithm):
    """Every node joins the set immediately (always dominating)."""

    name = "select-everybody"

    def round(self, node, round_index, inbox):
        node.state["output"] = {"in_ds": True}
        node.finish()
        return None


class TestResultPackaging:
    """Edge cases of the DominatingSetResult packaging pipeline."""

    def test_guarantee_propagates_verbatim(self, small_grid):
        result = solve_with_algorithm(small_grid, _SelectEverybody(), guarantee=12.5)
        assert result.guarantee == 12.5

    def test_guarantee_defaults_to_none_for_heuristics(self, small_grid):
        result = solve_with_algorithm(small_grid, _SelectEverybody())
        assert result.guarantee is None

    def test_non_dominating_output_is_flagged_not_raised(self, small_grid):
        result = solve_with_algorithm(small_grid, _SelectNobody())
        assert result.is_valid is False
        assert result.dominating_set == set()
        assert result.weight == 0
        assert len(result) == 0

    def test_empty_graph_nobody_is_vacuously_dominating(self):
        result = solve_with_algorithm(nx.empty_graph(0), _SelectNobody())
        assert result.is_valid is True
        assert len(result) == 0

    def test_len_counts_nodes_not_weight(self):
        graph = nx.path_graph(4)
        for node in graph.nodes():
            graph.nodes[node]["weight"] = 10
        result = solve_with_algorithm(graph, _SelectEverybody())
        assert len(result) == 4
        assert result.weight == 40
        assert result.is_valid is True

    def test_weight_counts_each_selected_node_once(self, small_grid):
        result = solve_with_algorithm(small_grid, _SelectEverybody())
        assert result.weight == small_grid.number_of_nodes()
        assert len(result) == small_grid.number_of_nodes()

    def test_truthy_non_dict_outputs_select_nodes(self, small_grid):
        class _BooleanOutputs(SynchronousAlgorithm):
            name = "boolean-outputs"

            def round(self, node, round_index, inbox):
                node.state["output"] = True  # plain truthy, not an in_ds dict
                node.finish()
                return None

        result = solve_with_algorithm(small_grid, _BooleanOutputs())
        assert result.dominating_set == set(small_grid.nodes())
