"""Approximation-quality regression suite.

Byte-level parity gates guarantee the execution tiers agree with each
other; nothing so far guarded the *quality* of the answers against silent
drift (a plausible-looking change to a threshold, a tie-break, or a
fallback path can keep every parity gate green while quietly producing
worse dominating sets).  This suite pins, for every covered registry
scenario, the achieved approximation ratio against the ``opt.py`` lower
bound into the checked-in ``quality_baseline.json`` and fails when a ratio
regresses beyond :data:`TOLERANCE`.

The scenario record streams are deterministic in ``(scenario, seed)``, and
all three execution tiers are byte-identical, so one baseline guards the
reference, batched and kernel engines alike.  Improvements do not fail the
suite -- refresh the baseline to lock them in::

    PYTHONPATH=src python tests/analysis/test_quality_regression.py --regenerate

Tier-1 runs the fast (smoke-sized) scenarios; the full fault-free registry
sweep runs under ``pytest -m slow`` (nightly).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.orchestration.registry import get_scenario
from repro.orchestration.scenarios import register_builtin_scenarios

BASELINE_PATH = Path(__file__).parent / "quality_baseline.json"

#: Relative regression tolerance on the achieved ratio.  Large enough to
#: absorb LP-solver noise across SciPy versions, small enough that a real
#: quality drift (a wrong threshold, a lost extension round) trips it.
TOLERANCE = 0.05

#: Small scenarios guarded in tier-1 on every run.
FAST_SCENARIOS = ("smoke/forest", "smoke/mixed")

#: The full fault-free, laptop-sized registry coverage (pytest -m slow).
#: Excluded: fault scenarios (they measure degradation, not quality),
#: E5/lower-bound (a construction, not an approximation), and the
#: scale/heavy scenarios whose OPT estimation dominates the run.
SLOW_SCENARIOS = (
    "E1/unweighted-eps",
    "E2/weighted-schemes",
    "E3/randomized-t",
    "E4/general-k",
    "E6/forests",
    "E7/unknown-params",
    "E8/comparison",
    "E10/lambda-ablation",
    "example/quickstart",
    "example/planar-city",
    "example/adhoc-wireless",
    "families/powerlaw-cluster",
    "families/random-geometric",
)

ALL_SCENARIOS = FAST_SCENARIOS + SLOW_SCENARIOS


def _measure(scenario_name: str):
    """Run the scenario and key each record's quality measurements.

    The record stream order is deterministic, so the positional index makes
    keys unique even when one solver appears with several parameterisations.
    """
    register_builtin_scenarios()
    records = get_scenario(scenario_name).run(seed=0, engine="batched")
    measured = {}
    for index, record in enumerate(records):
        key = f"{index:02d}:{record.instance}:{record.algorithm}"
        measured[key] = {
            "ratio": record.ratio,
            "weight": record.weight,
            "opt": record.opt_value,
            "opt_kind": record.opt_kind,
            "is_dominating": record.is_dominating,
        }
    return measured


def _load_baseline():
    if not BASELINE_PATH.exists():
        pytest.fail(
            f"missing {BASELINE_PATH}; regenerate with "
            "`python tests/analysis/test_quality_regression.py --regenerate`"
        )
    return json.loads(BASELINE_PATH.read_text())


def _assert_no_regression(scenario_name: str):
    baseline = _load_baseline()
    assert scenario_name in baseline, (
        f"scenario {scenario_name!r} missing from quality_baseline.json; "
        "regenerate the baseline"
    )
    expected = baseline[scenario_name]
    measured = _measure(scenario_name)
    assert set(measured) == set(expected), (
        f"{scenario_name}: record stream changed "
        f"(baseline {sorted(expected)}, measured {sorted(measured)}); "
        "regenerate the baseline if intentional"
    )
    failures = []
    for key, values in measured.items():
        if not values["is_dominating"] and expected[key]["is_dominating"]:
            failures.append(f"{key}: output is no longer a dominating set")
            continue
        allowed = expected[key]["ratio"] * (1.0 + TOLERANCE) + 1e-9
        if values["ratio"] > allowed:
            failures.append(
                f"{key}: ratio {values['ratio']:.4f} regressed past baseline "
                f"{expected[key]['ratio']:.4f} (+{TOLERANCE:.0%} tolerance)"
            )
    assert not failures, f"{scenario_name}: quality regression:\n  " + "\n  ".join(failures)


@pytest.mark.parametrize("scenario_name", FAST_SCENARIOS)
def test_quality_no_regression_fast(scenario_name):
    _assert_no_regression(scenario_name)


@pytest.mark.slow
@pytest.mark.parametrize("scenario_name", SLOW_SCENARIOS)
def test_quality_no_regression_full(scenario_name):
    _assert_no_regression(scenario_name)


def test_baseline_file_covers_all_scenarios():
    baseline = _load_baseline()
    missing = [name for name in ALL_SCENARIOS if name not in baseline]
    assert not missing, f"baseline missing scenarios: {missing}; regenerate"


def regenerate() -> None:
    """Recompute the baseline for every covered scenario and write it."""
    baseline = {}
    for name in ALL_SCENARIOS:
        print(f"measuring {name} ...", flush=True)
        baseline[name] = _measure(name)
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BASELINE_PATH} ({len(baseline)} scenarios)")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
