"""Tests for OPT estimation, run verification, experiments and tables."""

from __future__ import annotations

import pytest

from repro import RunSpec, execute
from repro.analysis.experiments import (
    aggregate_records,
    run_algorithm_on_instance,
    sweep,
)
from repro.analysis.opt import EXACT_THRESHOLD, estimate_opt
from repro.analysis.tables import format_table, render_records, render_summary
from repro.analysis.verify import approximation_ratio, verify_run
from repro.baselines.exact import exact_minimum_dominating_set
from repro.graphs.generators import GraphInstance, forest_union_graph, random_tree


def solve_mds(graph, alpha=None, epsilon=0.1):
    return execute(
        RunSpec(graph=graph, algorithm="deterministic",
                params={"epsilon": epsilon}, alpha=alpha)
    )


def solve_weighted_mds(graph, alpha=None, epsilon=0.1):
    return execute(
        RunSpec(graph=graph, algorithm="weighted",
                params={"epsilon": epsilon}, alpha=alpha)
    )


class TestOptEstimation:
    def test_small_graph_uses_exact(self, small_forest_union):
        estimate = estimate_opt(small_forest_union)
        assert estimate.exact
        _, opt = exact_minimum_dominating_set(small_forest_union)
        assert estimate.value == opt
        assert estimate.kind == "exact"

    def test_large_graph_uses_lp(self):
        graph = forest_union_graph(EXACT_THRESHOLD + 30, alpha=2, seed=1)
        estimate = estimate_opt(graph)
        assert not estimate.exact
        assert estimate.kind == "lp-lower-bound"

    def test_force_lp(self, small_tree):
        estimate = estimate_opt(small_tree, force_lp=True)
        assert not estimate.exact

    def test_force_exact(self):
        graph = forest_union_graph(60, alpha=2, seed=2)
        estimate = estimate_opt(graph, exact_threshold=10, force_exact=True)
        assert estimate.exact

    def test_conflicting_flags(self, small_tree):
        with pytest.raises(ValueError):
            estimate_opt(small_tree, force_exact=True, force_lp=True)

    def test_lp_bound_below_exact(self, small_forest_union):
        exact = estimate_opt(small_forest_union, force_exact=True)
        lp = estimate_opt(small_forest_union, force_lp=True)
        assert lp.value <= exact.value + 1e-6


class TestVerification:
    def test_approximation_ratio_degenerate_cases(self):
        assert approximation_ratio(0.0, 0.0) == 1.0
        assert approximation_ratio(5.0, 0.0) == float("inf")
        assert approximation_ratio(6.0, 2.0) == 3.0

    def test_report_for_paper_algorithm(self, small_forest_union):
        result = solve_mds(small_forest_union, alpha=3, epsilon=0.2)
        report = verify_run(small_forest_union, result)
        assert report.is_dominating
        assert report.within_guarantee
        assert report.packing_feasible
        assert report.dual_bound_holds
        assert report.ratio >= 1.0
        assert "rounds" in report.summary()

    def test_report_reuses_provided_opt(self, small_forest_union):
        opt = estimate_opt(small_forest_union)
        result = solve_mds(small_forest_union, alpha=3)
        report = verify_run(small_forest_union, result, opt=opt)
        assert report.opt is opt

    def test_weighted_run(self, weighted_forest_union):
        result = solve_weighted_mds(weighted_forest_union, alpha=3)
        report = verify_run(weighted_forest_union, result)
        assert report.is_dominating and report.within_guarantee


class TestExperiments:
    def _instances(self):
        graphs = [
            GraphInstance("tree", random_tree(30, seed=1), alpha=1),
            GraphInstance("fu", forest_union_graph(35, alpha=2, seed=2), alpha=2),
        ]
        return graphs

    def test_run_single_record(self):
        instance = self._instances()[0]
        record = run_algorithm_on_instance(
            "E1", instance, lambda inst: solve_mds(inst.graph, alpha=inst.alpha)
        )
        assert record.experiment == "E1"
        assert record.is_dominating
        assert record.ratio >= 1.0
        assert record.as_row()["ok"]

    def test_sweep_runs_all_combinations(self):
        instances = self._instances()
        solvers = {
            "eps-0.2": lambda inst: solve_mds(inst.graph, alpha=inst.alpha, epsilon=0.2),
            "eps-0.5": lambda inst: solve_mds(inst.graph, alpha=inst.alpha, epsilon=0.5),
        }
        records = sweep("E1", instances, solvers)
        assert len(records) == 4
        assert {record.params["solver_label"] for record in records} == {"eps-0.2", "eps-0.5"}

    def test_aggregate(self):
        instances = self._instances()
        records = sweep(
            "E1", instances, {"paper": lambda inst: solve_mds(inst.graph, alpha=inst.alpha)}
        )
        summary = aggregate_records(records)
        stats = next(iter(summary.values()))
        assert stats["runs"] == 2
        assert stats["violations"] == 0
        assert stats["max_ratio"] >= stats["mean_ratio"]


class TestTables:
    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_basic(self):
        table = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": None}])
        assert "a" in table and "b" in table
        assert "2.500" in table and "-" in table

    def test_boolean_rendering(self):
        table = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in table and "NO" in table

    def test_render_records(self):
        instance = GraphInstance("tree", random_tree(25, seed=3), alpha=1)
        record = run_algorithm_on_instance(
            "E1", instance, lambda inst: solve_mds(inst.graph, alpha=inst.alpha)
        )
        table = render_records([record])
        assert "E1" in table and "tree" in table

    def test_render_summary(self):
        instance = GraphInstance("tree", random_tree(25, seed=4), alpha=1)
        records = sweep("E1", [instance], {"paper": lambda inst: solve_mds(inst.graph, alpha=inst.alpha)})
        text = render_summary(aggregate_records(records))
        assert "mean_ratio" in text
