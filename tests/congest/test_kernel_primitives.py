"""Property-based tests (hypothesis) for the kernel tier's substrate.

Three layers are covered:

* the **CSR segment primitives** (:mod:`repro.congest.kernels.csr`) match
  brute-force per-node loops on arbitrary random graphs -- including the
  order-exact float fold, which must replay Python's left-to-right
  accumulation bit for bit;
* the **streaming generators** (:mod:`repro.graphs.large_scale`) round-trip
  ``networkx.Graph`` <-> ``CSRGraph`` losslessly, keep their neighbor lists
  sorted, and certify arboricity bounds consistent with the dict-based
  degeneracy computation;
* **kernel runs are deterministic**: the same spec produces byte-identical
  results across repeated in-process runs and across worker processes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.kernels.csr import (
    SequentialNeighborFold,
    int_bit_lengths,
    segment_any,
    segment_min,
    segment_min_argrank,
    segment_sum,
)
from repro.graphs import large_scale
from repro.graphs.arboricity import degeneracy
from repro.graphs.generators import random_bounded_arboricity_graph

FAST = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

graph_params = dict(
    n=st.integers(min_value=0, max_value=40),
    alpha=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10 ** 6),
)


def _random_csr(n, alpha, seed):
    graph = random_bounded_arboricity_graph(n, alpha=alpha, seed=seed)
    return graph, large_scale.csr_from_networkx(graph)


class TestSegmentPrimitives:
    @FAST
    @given(**graph_params)
    def test_segment_sum_matches_bruteforce(self, n, alpha, seed):
        graph, csr = _random_csr(n, alpha, seed)
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 50, size=n)
        summed = segment_sum(csr.indptr, values[csr.indices])
        for node in range(n):
            assert summed[node] == sum(values[u] for u in graph.neighbors(node))

    @FAST
    @given(**graph_params)
    def test_segment_any_and_min_match_bruteforce(self, n, alpha, seed):
        graph, csr = _random_csr(n, alpha, seed)
        rng = np.random.default_rng(seed + 1)
        flags = rng.random(n) < 0.3
        values = rng.integers(1, 60, size=n)
        any_set = segment_any(csr.indptr, flags[csr.indices])
        minima = segment_min(csr.indptr, values[csr.indices], empty=10 ** 9)
        for node in range(n):
            neighbors = list(graph.neighbors(node))
            assert any_set[node] == any(flags[u] for u in neighbors)
            expected = min((values[u] for u in neighbors), default=10 ** 9)
            assert minima[node] == expected

    @FAST
    @given(**graph_params)
    def test_segment_min_argrank_is_first_minimum_in_rank_order(self, n, alpha, seed):
        graph, csr = _random_csr(n, alpha, seed)
        rng = np.random.default_rng(seed + 2)
        values = rng.integers(1, 8, size=n)  # small range forces ties
        ranks = rng.permutation(n).astype(np.int64)
        minima = segment_min(csr.indptr, values[csr.indices], empty=10 ** 9)
        argranks = segment_min_argrank(
            csr.indptr, values[csr.indices], ranks[csr.indices], minima
        )
        for node in range(n):
            neighbors = list(graph.neighbors(node))
            if not neighbors:
                continue
            best = min(values[u] for u in neighbors)
            expected = min(ranks[u] for u in neighbors if values[u] == best)
            assert argranks[node] == expected

    @FAST
    @given(**graph_params)
    def test_sequential_fold_is_bitwise_left_fold(self, n, alpha, seed):
        """The fold must equal Python's sequential accumulation *exactly* --
        not merely within tolerance -- because the decide rounds compare the
        result against a threshold."""
        graph, csr = _random_csr(n, alpha, seed)
        rng = np.random.default_rng(seed + 3)
        values = rng.random(n)
        folded = SequentialNeighborFold(csr.indptr, csr.indices).fold(values)
        for node in range(n):
            expected = float(values[node])
            for neighbor in sorted(graph.neighbors(node)):
                expected += float(values[neighbor])
            assert folded[node] == expected  # bit-exact, no tolerance

    @FAST
    @given(values=st.lists(st.integers(min_value=0, max_value=2 ** 40), max_size=30))
    def test_int_bit_lengths_matches_python(self, values):
        array = np.asarray(values, dtype=np.int64)
        assert int_bit_lengths(array).tolist() == [v.bit_length() for v in values]


class TestCSRRoundTrip:
    @FAST
    @given(**graph_params, weighted=st.booleans())
    def test_networkx_roundtrip_lossless(self, n, alpha, seed, weighted):
        graph = random_bounded_arboricity_graph(n, alpha=alpha, seed=seed)
        if weighted:
            rng = np.random.default_rng(seed)
            for node in graph.nodes():
                graph.nodes[node]["weight"] = int(rng.integers(1, 40))
        csr = large_scale.csr_from_networkx(graph)
        back = csr.to_networkx()
        assert set(back.nodes()) == set(graph.nodes())
        assert set(map(frozenset, back.edges())) == set(map(frozenset, graph.edges()))
        for node in graph.nodes():
            assert back.nodes[node].get("weight", 1) == graph.nodes[node].get("weight", 1)
        # CSR invariants: sorted neighbor slices, symmetric edge count.
        for node in range(n):
            row = csr.indices[csr.indptr[node]:csr.indptr[node + 1]].tolist()
            assert row == sorted(graph.neighbors(node))

    @FAST
    @given(**graph_params)
    def test_csr_degeneracy_matches_dict_based(self, n, alpha, seed):
        graph, csr = _random_csr(n, alpha, seed)
        if n == 0:
            assert large_scale.csr_degeneracy(csr) == 0
        else:
            assert large_scale.csr_degeneracy(csr) == degeneracy(graph)

    def test_streamed_generators_have_valid_structure(self):
        for csr in [
            large_scale.large_preferential_attachment(200, attachment=3, seed=1),
            large_scale.large_grid(9, 13),
            large_scale.large_grid(5, 5, diagonal=True),
            large_scale.large_random_geometric(150, 0.12, seed=4),
        ]:
            graph = csr.to_networkx()
            assert graph.number_of_nodes() == csr.n
            assert graph.number_of_edges() == csr.m
            assert not any(u == v for u, v in graph.edges())
            if csr.alpha is not None:
                # The certificate must actually bound the arboricity, which
                # degeneracy/2-rounding witnesses: alpha <= degeneracy is not
                # required, but degeneracy <= 2*alpha - 1 always holds for a
                # correct certificate.
                assert degeneracy(graph) <= 2 * csr.alpha - 1

    def test_rejects_self_loops_and_duplicates(self):
        import pytest

        with pytest.raises(ValueError, match="self-loop"):
            large_scale.csr_from_edges(3, np.array([0, 1]), np.array([0, 2]))
        with pytest.raises(ValueError, match="duplicate"):
            large_scale.csr_from_edges(3, np.array([0, 0]), np.array([1, 1]))

    def test_from_networkx_rejects_non_integer_weights(self):
        import networkx as nx
        import pytest

        graph = nx.path_graph(3)
        graph.nodes[1]["weight"] = 2.7
        with pytest.raises(ValueError, match="positive integers"):
            large_scale.csr_from_networkx(graph)
        graph.nodes[1]["weight"] = 0
        with pytest.raises(ValueError, match="positive integers"):
            large_scale.csr_from_networkx(graph)

    def test_kernel_grid_cache_is_not_pickled(self):
        import pickle

        from repro.run import RunSpec, Session

        csr = large_scale.large_preferential_attachment(500, attachment=3, seed=1)
        cold = len(pickle.dumps(csr))
        Session().run(RunSpec(graph=csr, algorithm="deterministic", engine="kernel"))
        assert hasattr(csr, "_kernel_grid")  # the cache exists after a run...
        warm = len(pickle.dumps(csr))
        assert warm == cold  # ...but never crosses a process boundary
        assert not hasattr(pickle.loads(pickle.dumps(csr)), "_kernel_grid")


def _run_kernel_once(payload):
    """Worker entry point for the cross-process determinism check."""
    n, attachment, seed, algorithm = payload
    from repro.graphs.large_scale import large_preferential_attachment
    from repro.run import RunSpec, Session
    from repro.run.result import result_bytes

    csr = large_preferential_attachment(n, attachment=attachment, seed=seed)
    result = Session().run(
        RunSpec(graph=csr, algorithm=algorithm, alpha=attachment, engine="kernel")
    )
    return result_bytes(result)


class TestKernelDeterminism:
    def test_repeated_runs_byte_identical(self):
        from repro.run import RunSpec, Session
        from repro.run.result import result_bytes

        csr = large_scale.large_preferential_attachment(120, attachment=3, seed=6)
        session = Session()
        spec = RunSpec(graph=csr, algorithm="deterministic", alpha=3, engine="kernel")
        blobs = {result_bytes(session.run(spec)) for _ in range(3)}
        blobs.add(result_bytes(Session().run(spec)))  # fresh session too
        assert len(blobs) == 1

    def test_runs_byte_identical_across_processes(self):
        import multiprocessing

        payload = (120, 3, 6, "deterministic")
        local = _run_kernel_once(payload)
        context = multiprocessing.get_context("spawn")
        with context.Pool(2) as pool:
            remote = pool.map(_run_kernel_once, [payload, payload])
        assert remote == [local, local]
