"""Cross-implementation differential grid for the kernel execution tier.

Every kerneled algorithm (the forest 3-approximation, the Theorem 1.1/3.1
primal-dual pair, both LW-style distributed greedy baselines, and the
unknown-max-degree Remark 4.4 variant) runs under all three engines --
reference oracle, batched, kernel -- across the eight seeded graph
families, weighted and unweighted.  The assertion is the strongest the
repository has: identical dominating sets and byte-identical results via
:func:`repro.run.result.result_bytes` (which covers the full ``RunMetrics``
trace, the per-node outputs, weights and validation flags).

The CSR-direct path gets the same treatment: a kernel run on a streamed
:class:`~repro.graphs.large_scale.CSRGraph` must be byte-identical to a
reference run on the equivalent ``networkx`` graph -- with and without a
fault plan (plans compile against the CSR arrays through
:meth:`~repro.faults.session.FaultSession.for_csr`).

The default grid keeps tier-1 fast; the exhaustive grid (families x sizes x
seeds x weightings) runs under ``pytest -m slow`` and in ``nightly.yml``.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.errors import EngineCapabilityError
from repro.graphs import large_scale
from repro.graphs.generators import (
    caterpillar_graph,
    forest_union_graph,
    grid_graph,
    outerplanar_graph,
    planar_triangulation_graph,
    preferential_attachment_graph,
    random_tree,
)
from repro.graphs.weights import assign_random_weights
from repro.run import RunSpec, Session
from repro.run.result import result_bytes

ENGINES = ("reference", "batched", "kernel")

#: The eight families of the repository's differential grids.
FAMILIES = {
    "tree": (lambda size, seed: random_tree(size, seed=seed), 1),
    "caterpillar": (lambda size, seed: caterpillar_graph(max(2, size // 4), legs_per_node=3), 1),
    "grid": (lambda size, seed: grid_graph(5, max(2, size // 5)), 2),
    "outerplanar": (lambda size, seed: outerplanar_graph(size, seed=seed), 2),
    "planar": (lambda size, seed: planar_triangulation_graph(size, seed=seed), 3),
    "forest-union": (lambda size, seed: forest_union_graph(size, alpha=3, seed=seed), 3),
    "ba": (lambda size, seed: preferential_attachment_graph(size, attachment=3, seed=seed), 3),
    "gnp": (lambda size, seed: nx.gnp_random_graph(size, 0.15, seed=seed), None),
}

FAST_FAMILIES = ("tree", "grid", "forest-union", "ba")

#: Kerneled algorithms: registry name plus the weightings they accept.
#: ``deterministic`` on unit weights exercises UnweightedMDSAlgorithm,
#: ``weighted`` exercises WeightedMDSAlgorithm on both weightings, and
#: ``lw-deterministic`` is the unweighted distributed greedy baseline.
KERNELED = {
    "forest": (False,),
    "deterministic": (False,),
    "weighted": (False, True),
    "lw-deterministic": (False,),
    "lw-randomized": (False,),
    "unknown-degree": (False, True),
}


def _build(family_key, size, seed, weighted):
    builder, alpha = FAMILIES[family_key]
    graph = builder(size, seed)
    if weighted:
        assign_random_weights(graph, 1, 25, seed=seed + 1)
    if alpha is None:
        from repro.graphs.arboricity import arboricity_upper_bound

        alpha = max(1, arboricity_upper_bound(graph))
    return graph, alpha


def _run_grid_point(graph, alpha, algorithm, seed):
    results = {}
    for engine in ENGINES:
        spec = RunSpec(
            graph=graph, algorithm=algorithm, alpha=alpha, seed=seed, engine=engine
        )
        results[engine] = Session().run(spec)
    return results


def _assert_byte_identical(results, label):
    reference = results["reference"]
    for engine, result in results.items():
        assert result.dominating_set == reference.dominating_set, (
            f"{label}: dominating sets differ on {engine}"
        )
        assert result_bytes(result) == result_bytes(reference), (
            f"{label}: result bytes differ on {engine}"
        )


# --------------------------------------------------------------------------- #
# Fast grid (tier-1)
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("algorithm", sorted(KERNELED))
@pytest.mark.parametrize("family_key", FAST_FAMILIES)
def test_kernel_byte_identical(family_key, algorithm):
    for weighted in KERNELED[algorithm]:
        graph, alpha = _build(family_key, size=40, seed=13, weighted=weighted)
        results = _run_grid_point(graph, alpha, algorithm, seed=13)
        _assert_byte_identical(
            results, f"{algorithm}/{family_key}/weighted={weighted}"
        )


def test_kernel_on_edge_case_graphs():
    corner_graphs = [
        nx.empty_graph(0),
        nx.empty_graph(1),
        nx.empty_graph(7),
        nx.path_graph(2),
        nx.disjoint_union(nx.path_graph(3), nx.empty_graph(2)),
        nx.disjoint_union(nx.path_graph(2), nx.path_graph(2)),  # two-node components
        nx.star_graph(9),
    ]
    for algorithm in sorted(KERNELED):
        for index, graph in enumerate(corner_graphs):
            results = _run_grid_point(graph, 1, algorithm, seed=index)
            _assert_byte_identical(results, f"{algorithm}/corner-{index}")


def test_csr_direct_path_byte_identical():
    """Kernel-on-CSRGraph == reference-on-networkx, byte for byte."""
    cases = [
        (large_scale.large_grid(6, 8), "deterministic"),
        (large_scale.large_preferential_attachment(60, attachment=3, seed=5), "deterministic"),
        (large_scale.large_preferential_attachment(60, attachment=3, seed=5), "forest"),
        (large_scale.large_random_geometric(70, 0.15, seed=3), "lw-deterministic"),
        (
            large_scale.random_integer_weights(
                large_scale.large_preferential_attachment(50, attachment=3, seed=2),
                1, 40, seed=9,
            ),
            "weighted",
        ),
    ]
    for csr, algorithm in cases:
        alpha = csr.alpha if csr.alpha is not None else None
        kernel_result = Session().run(
            RunSpec(graph=csr, algorithm=algorithm, alpha=alpha, engine="kernel")
        )
        reference_result = Session().run(
            RunSpec(
                graph=csr.to_networkx(), algorithm=algorithm, alpha=alpha,
                engine="reference",
            )
        )
        label = f"{csr.name}/{algorithm}"
        assert kernel_result.dominating_set == reference_result.dominating_set, label
        assert result_bytes(kernel_result) == result_bytes(reference_result), label


# --------------------------------------------------------------------------- #
# Error-path parity and capability boundaries
# --------------------------------------------------------------------------- #


def test_unit_weight_rejection_identical_across_engines():
    graph = random_tree(12, seed=0)
    assign_random_weights(graph, 2, 9, seed=1)
    messages = {}
    for engine in ENGINES:
        with pytest.raises(ValueError) as info:
            # algorithm="deterministic" would dispatch to WeightedMDS; force
            # the unweighted warm-up onto a weighted instance instead.
            from repro.core.unweighted import UnweightedMDSAlgorithm

            Session().run(
                RunSpec(
                    graph=graph, algorithm=UnweightedMDSAlgorithm(), alpha=1,
                    engine=engine,
                )
            )
        messages[engine] = str(info.value)
    assert len(set(messages.values())) == 1, messages


def test_round_limit_error_identical_across_engines():
    from repro.congest.errors import NonConvergenceError

    graph = preferential_attachment_graph(30, attachment=3, seed=1)
    details = {}
    for engine in ENGINES:
        with pytest.raises(NonConvergenceError) as info:
            Session().run(
                RunSpec(
                    graph=graph, algorithm="deterministic", alpha=3,
                    engine=engine, max_rounds=3,
                )
            )
        details[engine] = (info.value.rounds, info.value.pending)
    assert len(set(details.values())) == 1, details


def test_kernel_falls_back_for_unkerneled_algorithms():
    graph = forest_union_graph(30, alpha=3, seed=2)
    results = {
        engine: Session().run(
            RunSpec(graph=graph, algorithm="randomized", alpha=3, engine=engine)
        )
        for engine in ("batched", "kernel")
    }
    assert result_bytes(results["kernel"]) == result_bytes(results["batched"])
    # The fallback is recorded, never disguised as a kernel execution.
    assert results["kernel"].engine_used == "batched"
    assert results["batched"].engine_used == "batched"


def test_engine_used_records_the_executing_tier():
    graph = grid_graph(5, 5)
    for engine in ENGINES:
        result = Session().run(
            RunSpec(graph=graph, algorithm="deterministic", alpha=2, engine=engine)
        )
        assert result.engine_used == engine


def test_kernel_runs_fault_plans():
    # The capability gap this file used to pin (kernel rejects faults) is
    # closed: a faulted kernel run is byte-identical to the reference.
    graph = grid_graph(5, 5)
    for faults in ("lossy10", "crash15", "latency2", "churn", "chaos"):
        results = {}
        for engine in ENGINES:
            spec = RunSpec(
                graph=graph, algorithm="deterministic", alpha=2,
                engine=engine, faults=faults, seed=3,
            )
            results[engine] = Session().run(spec)
        _assert_byte_identical(results, f"faults={faults}")
        assert results["kernel"].engine_used == "kernel"


def test_every_kerneled_algorithm_runs_every_fault_model_on_kernel():
    """The closed capability matrix: 6 kerneled algorithms x the full fault
    catalogue execute on the kernel tier itself (no fallback), byte-identical
    to the reference engine."""
    from repro.faults import FAULT_MODELS

    graph = preferential_attachment_graph(36, attachment=3, seed=4)
    for algorithm in sorted(KERNELED):
        for faults in sorted(FAULT_MODELS):
            spec = dict(algorithm=algorithm, alpha=3, seed=7, faults=faults)
            kernel = Session().run(RunSpec(graph=graph, engine="kernel", **spec))
            reference = Session().run(RunSpec(graph=graph, engine="reference", **spec))
            label = f"{algorithm}/{faults}"
            assert kernel.engine_used == "kernel", label
            assert result_bytes(kernel) == result_bytes(reference), label


def test_csr_rejects_non_kernel_engines_and_unkerneled_algorithms():
    csr = large_scale.large_grid(4, 4)
    with pytest.raises(EngineCapabilityError, match="engine='kernel'"):
        Session().run(RunSpec(graph=csr, algorithm="deterministic", engine="batched"))
    with pytest.raises(EngineCapabilityError, match="no kernel"):
        Session().run(RunSpec(graph=csr, algorithm="randomized", engine="kernel"))
    # The remaining unsupported cell of the capability matrix: an unkerneled
    # algorithm with faults on a CSR run names its exact coordinates.
    with pytest.raises(
        EngineCapabilityError,
        match=r"algorithm 'randomized' on engine='kernel' with faults",
    ):
        Session().run(
            RunSpec(
                graph=csr, algorithm="randomized", engine="kernel",
                faults="lossy10",
            )
        )


def test_csr_runs_fault_plans_byte_identical():
    """Kernel-on-CSRGraph under a fault model == reference-on-networkx under
    the identical materialised plan (FaultSpec sampling sees the same
    node/edge order on both representations)."""
    csr = large_scale.large_preferential_attachment(50, attachment=3, seed=6)
    for algorithm in ("deterministic", "forest", "lw-randomized"):
        for faults in ("crash-recover", "lossy10", "chaos"):
            kernel_result = Session().run(
                RunSpec(
                    graph=csr, algorithm=algorithm, alpha=csr.alpha,
                    engine="kernel", faults=faults, seed=2,
                )
            )
            reference_result = Session().run(
                RunSpec(
                    graph=csr.to_networkx(), algorithm=algorithm, alpha=csr.alpha,
                    engine="reference", faults=faults, seed=2,
                )
            )
            label = f"{algorithm}/{faults}"
            assert kernel_result.engine_used == "kernel", label
            assert result_bytes(kernel_result) == result_bytes(reference_result), label


# --------------------------------------------------------------------------- #
# Exhaustive grid (pytest -m slow; nightly.yml kernel-parity job)
# --------------------------------------------------------------------------- #


@pytest.mark.slow
@pytest.mark.parametrize("algorithm", sorted(KERNELED))
@pytest.mark.parametrize("family_key", sorted(FAMILIES))
@pytest.mark.parametrize("size", [12, 60, 120])
@pytest.mark.parametrize("seed", [0, 1, 2022])
def test_kernel_byte_identical_exhaustive(family_key, algorithm, size, seed):
    for weighted in KERNELED[algorithm]:
        graph, alpha = _build(family_key, size=size, seed=seed, weighted=weighted)
        results = _run_grid_point(graph, alpha, algorithm, seed=seed)
        _assert_byte_identical(
            results,
            f"{algorithm}/{family_key}/n={size}/seed={seed}/weighted={weighted}",
        )


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 7, 2022])
@pytest.mark.parametrize(
    "builder",
    [
        lambda seed: large_scale.large_preferential_attachment(300, attachment=4, seed=seed),
        lambda seed: large_scale.large_grid(12, 18),
        lambda seed: large_scale.large_random_geometric(250, 0.1, seed=seed),
        lambda seed: large_scale.random_integer_weights(
            large_scale.large_preferential_attachment(250, attachment=3, seed=seed),
            1, 60, seed=seed + 1,
        ),
    ],
)
def test_csr_direct_path_exhaustive(builder, seed):
    csr = builder(seed)
    for algorithm in ("deterministic", "weighted", "lw-deterministic"):
        kernel_result = Session().run(
            RunSpec(graph=csr, algorithm=algorithm, alpha=csr.alpha, engine="kernel", seed=seed)
        )
        reference_result = Session().run(
            RunSpec(
                graph=csr.to_networkx(), algorithm=algorithm, alpha=csr.alpha,
                engine="reference", seed=seed,
            )
        )
        assert result_bytes(kernel_result) == result_bytes(reference_result), (
            f"{csr.name}/{algorithm}/seed={seed}"
        )
