"""SharedMemoryTransport must never leak /dev/shm segments.

The segments are *named files*: unlike anonymous memory they survive the
process unless explicitly unlinked, so an exception between the first
allocation and the transport handoff used to strand them until reboot.
Construction now unlinks everything it created before re-raising, and
``close()`` tolerates (and is the cleanup arm for) partially constructed
state.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.congest.sharded.shmem import SharedMemoryTransport

linux_only = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="inspects /dev/shm"
)

SHARDS = 2


def _counts() -> np.ndarray:
    counts = np.zeros((SHARDS, SHARDS), dtype=np.int64)
    counts[0, 1] = counts[1, 0] = 4
    return counts


def _segments() -> set:
    return set(os.listdir("/dev/shm"))


class _BrokenBarrierCtx:
    """A context whose Barrier raises after both segments already exist."""

    def Barrier(self, parties):
        raise RuntimeError("simulated mid-setup failure")


@linux_only
class TestConstructionCleanup:
    def test_failure_after_both_segments_leaves_no_segments(self):
        before = _segments()
        with pytest.raises(RuntimeError, match="simulated mid-setup failure"):
            SharedMemoryTransport(_BrokenBarrierCtx(), SHARDS, _counts(), _counts())
        assert _segments() - before == set()

    def test_failure_between_the_two_allocations_leaves_no_segments(
        self, monkeypatch
    ):
        real = shared_memory.SharedMemory
        calls = {"create": 0}

        def flaky(*args, **kwargs):
            if kwargs.get("create"):
                calls["create"] += 1
                if calls["create"] == 2:
                    raise OSError("simulated allocation failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(shared_memory, "SharedMemory", flaky)
        before = _segments()
        with pytest.raises(OSError, match="simulated allocation failure"):
            SharedMemoryTransport(
                multiprocessing.get_context(), SHARDS, _counts(), _counts()
            )
        assert calls["create"] == 2
        assert _segments() - before == set()

    def test_close_is_idempotent_and_unlinks(self):
        before = _segments()
        transport = SharedMemoryTransport(
            multiprocessing.get_context(), SHARDS, _counts(), _counts()
        )
        assert _segments() - before, "construction allocates named segments"
        transport.close()
        assert _segments() - before == set()
        transport.close()
        assert _segments() - before == set()
