"""Tests for payload bit accounting."""

from __future__ import annotations

import pytest

from repro.congest.message import Broadcast, estimate_payload_bits, word_size_bits


class TestWordSize:
    def test_small_networks(self):
        assert word_size_bits(1) == 1
        assert word_size_bits(2) == 2
        assert word_size_bits(1000) == 10

    def test_growth_is_logarithmic(self):
        assert word_size_bits(10 ** 6) <= 20


class TestPayloadBits:
    def test_boolean_is_one_bit(self):
        assert estimate_payload_bits({"flag": True}, 100) == 1

    def test_none_is_one_bit(self):
        assert estimate_payload_bits({"nothing": None}, 100) == 1

    def test_integer_uses_bit_length(self):
        assert estimate_payload_bits({"value": 7}, 100) == 4  # 3 bits + sign

    def test_float_is_two_words(self):
        assert estimate_payload_bits({"x": 0.25}, 1000) == 2 * word_size_bits(1000)

    def test_string_costs_per_character(self):
        assert estimate_payload_bits({"s": "ab"}, 100) == 12

    def test_multiple_fields_sum(self):
        single = estimate_payload_bits({"a": True}, 100)
        double = estimate_payload_bits({"a": True, "b": True}, 100)
        assert double == 2 * single

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            estimate_payload_bits({"bad": [1, 2, 3]}, 100)

    def test_empty_payload_is_free(self):
        assert estimate_payload_bits({}, 100) == 0


class TestBroadcast:
    def test_broadcast_is_frozen(self):
        message = Broadcast({"x": 1})
        with pytest.raises(AttributeError):
            message.payload = {}

    def test_broadcast_carries_payload(self):
        assert Broadcast({"x": 1}).payload == {"x": 1}
