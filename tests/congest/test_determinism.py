"""Determinism regression tests: same seed => byte-identical runs.

The network seeds every node's private RNG from ``f"{seed}:{node_id!r}"``, so
a fixed ``(graph, algorithm, seed)`` triple must reproduce *exactly* the same
execution -- outputs, round count, and the full per-round metrics trace --
across repeated runs and across both engines.  This locks down the RNG
threading through :class:`RandomizedMDSAlgorithm`: any engine that called a
node's RNG a different number of times, or consulted a shared stream, would
change the byte-level trace even when the final dominating set happens to
agree.
"""

from __future__ import annotations

import pickle

import pytest

from repro.congest.engine import universal_engines
from repro.congest.simulator import run_algorithm
from repro.core.general_graphs import GeneralGraphMDSAlgorithm
from repro.core.randomized import RandomizedMDSAlgorithm
from repro.graphs.generators import forest_union_graph, preferential_attachment_graph


def _trace(graph, algorithm_factory, seed, engine, **kwargs):
    """Run and serialise everything observable about the execution.

    ``engine_used`` is normalised away: it names the executing engine by
    design, which is exactly what the cross-engine traces must ignore.
    """
    import dataclasses

    result = run_algorithm(graph, algorithm_factory(), seed=seed, engine=engine, **kwargs)
    metrics = dataclasses.replace(result.metrics, engine_used=None)
    return pickle.dumps((result.algorithm_name, result.outputs, metrics))


@pytest.mark.parametrize("engine", sorted(universal_engines()))
def test_randomized_same_seed_byte_identical_across_runs(engine):
    graph = forest_union_graph(60, alpha=3, seed=17)
    first = _trace(graph, lambda: RandomizedMDSAlgorithm(t=2), 42, engine, alpha=3)
    second = _trace(graph, lambda: RandomizedMDSAlgorithm(t=2), 42, engine, alpha=3)
    assert first == second


def test_randomized_same_seed_byte_identical_across_engines():
    graph = preferential_attachment_graph(70, attachment=3, seed=23)
    traces = {
        engine: _trace(graph, lambda: RandomizedMDSAlgorithm(t=2), 7, engine, alpha=3)
        for engine in universal_engines()
    }
    assert len(set(traces.values())) == 1, "engines produced different byte-level traces"


def test_general_graph_algorithm_deterministic_across_engines():
    graph = preferential_attachment_graph(60, attachment=4, seed=3)
    traces = {
        engine: _trace(graph, lambda: GeneralGraphMDSAlgorithm(k=2), 11, engine)
        for engine in universal_engines()
    }
    assert len(set(traces.values())) == 1


@pytest.mark.parametrize("engine", sorted(universal_engines()))
def test_different_seeds_differ(engine):
    """Sanity check that the trace actually depends on the seed (the
    byte-identical assertions above would pass vacuously otherwise)."""
    graph = preferential_attachment_graph(70, attachment=3, seed=23)
    a = _trace(graph, lambda: RandomizedMDSAlgorithm(t=1), 1, engine, alpha=3)
    b = _trace(graph, lambda: RandomizedMDSAlgorithm(t=1), 2, engine, alpha=3)
    assert a != b
