"""Tests for the synchronous round executor."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.algorithm import SynchronousAlgorithm
from repro.congest.engine import universal_engines
from repro.congest.errors import AlgorithmError, BandwidthViolation, NonConvergenceError
from repro.congest.message import Broadcast
from repro.congest.network import Network
from repro.congest.simulator import Simulator, run_algorithm

ENGINES = sorted(universal_engines())


class CountNeighborsAlgorithm(SynchronousAlgorithm):
    """Round 0: broadcast a token; round 1: count received tokens; stop."""

    name = "count-neighbors"

    def round(self, node, round_index, inbox):
        if round_index == 0:
            return Broadcast({"token": True})
        node.state["output"] = len(inbox)
        node.finish()
        return None


class SilentAlgorithm(SynchronousAlgorithm):
    name = "silent"

    def round(self, node, round_index, inbox):
        node.state["output"] = True
        node.finish()
        return None


class ChattyAlgorithm(SynchronousAlgorithm):
    """Sends an oversized message to trigger the bandwidth check."""

    name = "chatty"

    def round(self, node, round_index, inbox):
        node.finish()
        return Broadcast({"blob": "x" * 4096})


class NonNeighborSender(SynchronousAlgorithm):
    name = "non-neighbor-sender"

    def round(self, node, round_index, inbox):
        node.finish()
        target = node.config["target"]
        if node.node_id != target:
            return {target: {"hello": True}}
        return None


class NeverTerminates(SynchronousAlgorithm):
    name = "never-terminates"

    def round(self, node, round_index, inbox):
        return None


class TwoHopFlood(SynchronousAlgorithm):
    """Relays a token for a configurable number of rounds, then stops."""

    name = "two-hop-flood"

    def setup(self, node):
        node.state["seen"] = node.node_id == node.config["source"]

    def round(self, node, round_index, inbox):
        if any(message.get("token") for message in inbox.values()):
            node.state["seen"] = True
        if round_index >= node.config["rounds"]:
            node.state["output"] = node.state["seen"]
            node.finish()
            return None
        if node.state["seen"]:
            return Broadcast({"token": True})
        return None


class TestBasicExecution:
    def test_neighbor_counting(self, small_grid):
        result = run_algorithm(small_grid, CountNeighborsAlgorithm())
        for node in small_grid.nodes():
            assert result.outputs[node] == small_grid.degree(node)

    def test_round_count(self, small_grid):
        result = run_algorithm(small_grid, CountNeighborsAlgorithm())
        assert result.rounds == 2

    def test_silent_algorithm_one_round_no_messages(self, small_tree):
        result = run_algorithm(small_tree, SilentAlgorithm())
        assert result.rounds == 1
        assert result.metrics.total_messages == 0

    def test_metrics_accumulate(self, small_grid):
        result = run_algorithm(small_grid, CountNeighborsAlgorithm())
        assert result.metrics.total_messages == 2 * small_grid.number_of_edges()
        assert result.metrics.total_bits > 0
        assert result.metrics.max_message_bits >= 1

    def test_selected_nodes_from_boolean_outputs(self, small_tree):
        result = run_algorithm(small_tree, SilentAlgorithm())
        assert result.selected_nodes() == set(small_tree.nodes())

    def test_selected_nodes_from_dict_outputs(self, small_tree):
        class DictOutput(SilentAlgorithm):
            def output(self, node):
                return {"in_ds": node.node_id == 0}

        result = run_algorithm(small_tree, DictOutput())
        assert result.selected_nodes() == {0}


class TestModelEnforcement:
    def test_bandwidth_violation_raised(self, small_tree):
        with pytest.raises(BandwidthViolation):
            run_algorithm(small_tree, ChattyAlgorithm())

    def test_bandwidth_violation_ignored_when_not_strict(self, small_tree):
        result = run_algorithm(small_tree, ChattyAlgorithm(), strict=False)
        assert result.metrics.max_message_bits > result.metrics.bandwidth_budget_bits

    def test_local_algorithms_skip_the_check(self, small_tree):
        class LocalChatty(ChattyAlgorithm):
            congest = False

        result = run_algorithm(small_tree, LocalChatty())
        assert result.metrics.bandwidth_budget_bits == 0

    def test_sending_to_non_neighbor_rejected(self):
        path = nx.path_graph(4)
        with pytest.raises(AlgorithmError):
            run_algorithm(path, NonNeighborSender(), config={"target": 3})

    def test_round_limit_enforced(self, small_tree):
        with pytest.raises(NonConvergenceError):
            run_algorithm(small_tree, NeverTerminates(), max_rounds=10)

    def test_algorithm_max_rounds_respected(self, small_tree):
        class Limited(NeverTerminates):
            def max_rounds(self, network):
                return 5

        with pytest.raises(NonConvergenceError) as info:
            run_algorithm(small_tree, Limited())
        assert info.value.rounds == 5


class DelayedChattyAlgorithm(SynchronousAlgorithm):
    """Behaves for two rounds, then one designated node sends an oversized
    broadcast -- so the violation's round and sender are both predictable."""

    name = "delayed-chatty"

    def round(self, node, round_index, inbox):
        if round_index < 2:
            return Broadcast({"ok": True})
        node.finish()
        if node.node_id == node.config["offender"]:
            return Broadcast({"blob": "x" * 4096})
        return None


class ChattyUnicastAlgorithm(SynchronousAlgorithm):
    """Oversized payload on the explicit per-neighbor (unicast) send path."""

    name = "chatty-unicast"

    def round(self, node, round_index, inbox):
        node.finish()
        if node.node_id == node.config["offender"] and node.neighbors:
            return {node.neighbors[0]: {"blob": "y" * 4096}}
        return None


class TestBandwidthViolationsAcrossEngines:
    """Both engines must reject oversized payloads identically, naming the
    same offending round, sender and receiver."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_broadcast_violation_identifies_round_and_node(self, engine, small_tree):
        offender = sorted(small_tree.nodes())[3]
        with pytest.raises(BandwidthViolation) as info:
            run_algorithm(
                small_tree,
                DelayedChattyAlgorithm(),
                config={"offender": offender},
                engine=engine,
            )
        violation = info.value
        assert violation.sender == offender
        assert violation.round_index == 2
        assert violation.receiver in set(small_tree.neighbors(offender))
        assert violation.bits > violation.budget > 0
        assert "round 2" in str(violation)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_unicast_violation_identifies_round_and_node(self, engine, small_tree):
        offender = next(
            node for node in small_tree.nodes() if small_tree.degree(node) > 0
        )
        with pytest.raises(BandwidthViolation) as info:
            run_algorithm(
                small_tree,
                ChattyUnicastAlgorithm(),
                config={"offender": offender},
                engine=engine,
            )
        violation = info.value
        assert violation.sender == offender
        assert violation.round_index == 0
        assert violation.bits > violation.budget

    def test_engines_agree_on_the_first_violation(self, small_tree):
        offender = sorted(small_tree.nodes())[3]
        violations = {}
        for engine in ENGINES:
            with pytest.raises(BandwidthViolation) as info:
                run_algorithm(
                    small_tree,
                    DelayedChattyAlgorithm(),
                    config={"offender": offender},
                    engine=engine,
                )
            value = info.value
            violations[engine] = (
                value.sender,
                value.receiver,
                value.bits,
                value.budget,
                value.round_index,
            )
        assert len(set(violations.values())) == 1, violations

    @pytest.mark.parametrize("engine", ENGINES)
    def test_not_strict_records_instead_of_raising(self, engine, small_tree):
        result = run_algorithm(small_tree, ChattyAlgorithm(), strict=False, engine=engine)
        assert result.metrics.max_message_bits > result.metrics.bandwidth_budget_bits

    @pytest.mark.parametrize("engine", ENGINES)
    def test_non_neighbor_send_rejected(self, engine):
        path = nx.path_graph(4)
        with pytest.raises(AlgorithmError, match="non-neighbor"):
            run_algorithm(path, NonNeighborSender(), config={"target": 3}, engine=engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_round_limit_enforced(self, engine, small_tree):
        with pytest.raises(NonConvergenceError):
            run_algorithm(small_tree, NeverTerminates(), max_rounds=10, engine=engine)


class TestMessageDelivery:
    def test_messages_travel_one_hop_per_round(self):
        path = nx.path_graph(5)
        # After r relay rounds the token reaches distance r from the source.
        result = run_algorithm(path, TwoHopFlood(), config={"source": 0, "rounds": 2})
        assert result.outputs[0] and result.outputs[1] and result.outputs[2]
        assert not result.outputs[3] and not result.outputs[4]

    def test_flood_eventually_reaches_everyone(self):
        path = nx.path_graph(5)
        result = run_algorithm(path, TwoHopFlood(), config={"source": 0, "rounds": 6})
        assert all(result.outputs.values())

    def test_runs_are_reproducible(self, small_ba):
        first = run_algorithm(small_ba, CountNeighborsAlgorithm(), seed=1)
        second = run_algorithm(small_ba, CountNeighborsAlgorithm(), seed=1)
        assert first.outputs == second.outputs
        assert first.metrics.total_messages == second.metrics.total_messages

    def test_simulator_reusable_across_networks(self, small_tree, small_grid):
        simulator = Simulator()
        algorithm = CountNeighborsAlgorithm()
        first = simulator.run(Network(small_tree), algorithm)
        second = simulator.run(Network(small_grid), algorithm)
        assert first.rounds == second.rounds == 2
