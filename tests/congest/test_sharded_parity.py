"""Byte-parity and behavior gates for the sharded execution tier.

The sharded engine hash-partitions a graph across worker processes and
exchanges only boundary messages; its entire contract is **byte identity**
with the single-process kernel tier -- same ``result_bytes`` (outputs,
rounds, full ``RunMetrics`` trace) for every kerneled algorithm -- and
**shard-count independence**: 1, 2, 4 and 7 shards (including more shards
than nodes) all produce those same bytes.

Tier-1 runs a fast subset (two families, all six kerneled algorithms, the
shard-count sweep on two representative algorithms, plus the error paths:
capability skips, non-convergence parity, and a SIGKILLed worker that must
surface as a clean error rather than a hang).  The exhaustive grid --
every family x algorithm x weighting x shard count -- is ``-m slow`` and
runs in ``nightly.yml``.
"""

from __future__ import annotations

import os
import signal

import networkx as nx
import pytest

from repro.congest.errors import EngineCapabilityError, NonConvergenceError
from repro.graphs import large_scale
from repro.graphs.generators import (
    forest_union_graph,
    grid_graph,
    preferential_attachment_graph,
    random_tree,
)
from repro.graphs.weights import assign_random_weights
from repro.run import RunSpec, Session
from repro.run.result import result_bytes

SHARD_COUNTS = (1, 2, 4, 7)

#: (builder, alpha) -- the same seeded families the kernel parity grid uses.
FAMILIES = {
    "tree": (lambda size, seed: random_tree(size, seed=seed), 1),
    "grid": (lambda size, seed: grid_graph(5, max(2, size // 5)), 2),
    "forest-union": (lambda size, seed: forest_union_graph(size, alpha=3, seed=seed), 3),
    "ba": (lambda size, seed: preferential_attachment_graph(size, attachment=3, seed=seed), 3),
}

FAST_FAMILIES = ("tree", "ba")

#: Kerneled algorithms and the weightings they accept (mirrors the kernel
#: parity grid; the sharded tier distributes exactly these programs).
KERNELED = {
    "forest": (False,),
    "deterministic": (False,),
    "weighted": (False, True),
    "lw-deterministic": (False,),
    "lw-randomized": (False,),
    "unknown-degree": (False, True),
}


def _build(family_key, size, seed, weighted):
    builder, alpha = FAMILIES[family_key]
    graph = builder(size, seed)
    if weighted:
        assign_random_weights(graph, 1, 25, seed=seed + 1)
    return graph, alpha


def _run(graph, algorithm, alpha, seed, engine, shards=None, **overrides):
    spec = RunSpec(
        graph=graph,
        algorithm=algorithm,
        alpha=alpha,
        seed=seed,
        engine=engine,
        shards=shards,
        **overrides,
    )
    return Session().run(spec)


def _assert_sharded_matches_kernel(graph, algorithm, alpha, seed, shard_counts, label):
    kernel = _run(graph, algorithm, alpha, seed, "kernel")
    expected = result_bytes(kernel)
    assert kernel.engine_used == "kernel"
    for shards in shard_counts:
        sharded = _run(graph, algorithm, alpha, seed, "sharded", shards=shards)
        assert sharded.engine_used == "sharded", label
        assert result_bytes(sharded) == expected, (
            f"{label}: shards={shards} diverges from the kernel engine"
        )


# --------------------------------------------------------------------------- #
# Fast grid (tier-1)
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("algorithm", sorted(KERNELED))
@pytest.mark.parametrize("family_key", FAST_FAMILIES)
def test_sharded_byte_identical_fast(family_key, algorithm):
    for weighted in KERNELED[algorithm]:
        graph, alpha = _build(family_key, size=40, seed=13, weighted=weighted)
        _assert_sharded_matches_kernel(
            graph, algorithm, alpha, 13, (2,),
            f"{algorithm}/{family_key}/weighted={weighted}",
        )


@pytest.mark.parametrize("algorithm", ("forest", "lw-randomized"))
def test_shard_count_independence(algorithm):
    """1, 2, 4 and 7 shards produce one byte stream (7 > several shard loads)."""
    graph, alpha = _build("ba", size=40, seed=13, weighted=False)
    _assert_sharded_matches_kernel(
        graph, algorithm, alpha, 13, SHARD_COUNTS, f"{algorithm}/shard-sweep"
    )


def test_more_shards_than_nodes():
    """Empty shards are legal: shards=7 on a 3-node path still agrees."""
    _assert_sharded_matches_kernel(
        nx.path_graph(3), "deterministic", 1, 5, (7,), "path-3/shards=7"
    )


def test_sharded_on_edge_case_graphs():
    corner_graphs = [
        nx.empty_graph(0),
        nx.empty_graph(1),
        nx.star_graph(9),
        nx.disjoint_union(nx.path_graph(3), nx.empty_graph(2)),
    ]
    for index, graph in enumerate(corner_graphs):
        _assert_sharded_matches_kernel(
            graph, "deterministic", 1, index, (3,), f"corner-{index}"
        )


def test_csr_direct_sharded_byte_identical():
    """CSRGraph specs run shard-partitioned without ever building a network."""
    csr = large_scale.large_preferential_attachment(300, attachment=3, seed=7)
    for algorithm in ("forest", "deterministic"):
        _assert_sharded_matches_kernel(
            csr, algorithm, None, 3, (1, 4), f"csr/{algorithm}"
        )


# --------------------------------------------------------------------------- #
# Error paths
# --------------------------------------------------------------------------- #


def test_nonconvergence_parity():
    """A too-small round limit raises the same NonConvergenceError shape."""
    graph, alpha = _build("ba", size=40, seed=13, weighted=False)
    errors = {}
    for engine in ("kernel", "sharded"):
        with pytest.raises(NonConvergenceError) as excinfo:
            _run(graph, "deterministic", alpha, 13, engine, max_rounds=1)
        errors[engine] = excinfo.value
    assert errors["sharded"].rounds == errors["kernel"].rounds
    assert str(errors["sharded"]) == str(errors["kernel"])


def test_faulted_cells_raise_structured_capability_error():
    graph, alpha = _build("tree", size=20, seed=3, weighted=False)
    with pytest.raises(EngineCapabilityError) as excinfo:
        _run(graph, "deterministic", alpha, 0, "sharded", faults="crash15")
    assert excinfo.value.cell == ("dory-ghaffari-ilchi-unweighted", "sharded", "faulted")

    csr = large_scale.large_preferential_attachment(50, attachment=3, seed=1)
    with pytest.raises(EngineCapabilityError) as excinfo:
        _run(csr, "forest", None, 0, "sharded", faults="crash15")
    assert excinfo.value.engine == "sharded"
    assert excinfo.value.fault_model is not None


def test_unkerneled_algorithm_raises_capability_error():
    graph, alpha = _build("tree", size=20, seed=3, weighted=False)
    with pytest.raises(EngineCapabilityError) as excinfo:
        _run(graph, "general", alpha, 0, "sharded")
    assert excinfo.value.engine == "sharded"
    assert excinfo.value.fault_model is None


def test_shards_requires_sharded_engine():
    graph = nx.path_graph(4)
    with pytest.raises(ValueError, match="shards must be >= 1"):
        RunSpec(graph=graph, algorithm="deterministic", engine="sharded", shards=0)
    with pytest.raises(ValueError, match="shards requires engine='sharded'"):
        RunSpec(graph=graph, algorithm="deterministic", engine="kernel", shards=2)
    # Engine left to the session default: the session rejects the knob too,
    # because an implicit default must never silently become multi-process.
    spec = RunSpec(graph=graph, algorithm="deterministic", shards=2)
    with pytest.raises(ValueError, match="shards requires"):
        Session().run(spec)


def test_worker_crash_surfaces_as_clean_error(monkeypatch):
    """A SIGKILLed worker breaks the barrier; the run errors, never hangs."""
    if "fork" not in __import__("multiprocessing").get_all_start_methods():
        pytest.skip("crash injection relies on fork inheriting the patch")
    from repro.congest.kernels.grid import grid_from_csr
    from repro.congest.sharded import engine as sharded_engine
    from repro.congest.sharded import worker as sharded_worker
    from repro.congest.sharded.shmem import TransportError
    from repro.core.trees import ForestMDSAlgorithm

    def _crash_builder(grid, config, algorithm, seed, n_global):
        os.kill(os.getpid(), signal.SIGKILL)

    monkeypatch.setitem(sharded_worker.PROGRAM_BUILDERS, "forest", _crash_builder)
    csr = large_scale.large_preferential_attachment(60, attachment=3, seed=2)
    grid = grid_from_csr(csr)
    with pytest.raises(TransportError, match="died mid-run|transport broke"):
        sharded_engine.run_sharded_program(
            grid,
            {"n": csr.n, "max_degree": csr.max_degree, "alpha": 3},
            ForestMDSAlgorithm(),
            budget=32,
            limit=50,
            strict=True,
            seed=0,
            shards=2,
            start_method="fork",
            barrier_timeout=10.0,
        )


# --------------------------------------------------------------------------- #
# Exhaustive grid (nightly, -m slow)
# --------------------------------------------------------------------------- #


@pytest.mark.slow
@pytest.mark.parametrize("algorithm", sorted(KERNELED))
@pytest.mark.parametrize("family_key", sorted(FAMILIES))
def test_sharded_full_grid(family_key, algorithm):
    for weighted in KERNELED[algorithm]:
        for seed in (3, 13):
            graph, alpha = _build(family_key, size=60, seed=seed, weighted=weighted)
            _assert_sharded_matches_kernel(
                graph, algorithm, alpha, seed, SHARD_COUNTS,
                f"{algorithm}/{family_key}/weighted={weighted}/seed={seed}",
            )
