"""Tests for the metrics containers."""

from __future__ import annotations

from repro.congest.metrics import RoundMetrics, RunMetrics


class TestRunMetrics:
    def test_record_accumulates(self):
        run = RunMetrics(bandwidth_budget_bits=64)
        run.record(RoundMetrics(round_index=0, messages=10, bits=100, max_message_bits=16))
        run.record(RoundMetrics(round_index=1, messages=5, bits=40, max_message_bits=32))
        assert run.rounds == 2
        assert run.total_messages == 15
        assert run.total_bits == 140
        assert run.max_message_bits == 32
        assert len(run.per_round) == 2

    def test_average_messages(self):
        run = RunMetrics()
        run.record(RoundMetrics(round_index=0, messages=4))
        run.record(RoundMetrics(round_index=1, messages=6))
        assert run.average_messages_per_round == 5.0

    def test_average_of_empty_run_is_zero(self):
        assert RunMetrics().average_messages_per_round == 0.0

    def test_summary_mentions_budget(self):
        run = RunMetrics(bandwidth_budget_bits=128)
        run.record(RoundMetrics(round_index=0, messages=1, bits=8, max_message_bits=8))
        assert "budget=128" in run.summary()

    def test_summary_marks_local_model(self):
        run = RunMetrics(bandwidth_budget_bits=0)
        assert "LOCAL" in run.summary()
