"""Tests for the Network wrapper."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.network import Network
from repro.graphs.generators import random_tree
from repro.graphs.weights import assign_random_weights


class TestConstruction:
    def test_basic_counts(self, small_tree):
        network = Network(small_tree, alpha=1)
        assert network.n == small_tree.number_of_nodes()
        assert network.m == small_tree.number_of_edges()
        assert len(network) == network.n

    def test_max_degree(self):
        star = nx.star_graph(5)
        network = Network(star)
        assert network.max_degree == 5

    def test_rejects_directed(self):
        with pytest.raises(TypeError):
            Network(nx.DiGraph([(0, 1)]))

    def test_rejects_multigraph(self):
        with pytest.raises(TypeError):
            Network(nx.MultiGraph([(0, 1)]))

    def test_weights_read_from_graph(self):
        graph = random_tree(10, seed=1)
        assign_random_weights(graph, 2, 9, seed=2)
        network = Network(graph)
        for node in graph.nodes():
            assert network.context(node).weight == graph.nodes[node]["weight"]

    def test_default_weight_is_one(self, small_tree):
        network = Network(small_tree)
        assert all(network.context(node).weight == 1 for node in small_tree.nodes())


class TestConfig:
    def test_contains_global_knowledge(self, small_tree):
        network = Network(small_tree, alpha=1, config={"epsilon": 0.2})
        config = network.context(0).config
        assert config["n"] == small_tree.number_of_nodes()
        assert config["max_degree"] == network.max_degree
        assert config["alpha"] == 1
        assert config["epsilon"] == 0.2

    def test_unknown_delta_mode(self, small_tree):
        network = Network(small_tree, alpha=1, knows_max_degree=False)
        assert "max_degree" not in network.context(0).config

    def test_unknown_alpha_mode(self, small_tree):
        network = Network(small_tree)
        assert "alpha" not in network.context(0).config

    def test_config_is_read_only(self, small_tree):
        network = Network(small_tree, alpha=1)
        with pytest.raises(TypeError):
            network.context(0).config["n"] = 5


class TestNodeContexts:
    def test_neighbors_match_graph(self, small_grid):
        network = Network(small_grid)
        for node in small_grid.nodes():
            assert set(network.context(node).neighbors) == set(small_grid.neighbors(node))

    def test_degree_properties(self, small_grid):
        network = Network(small_grid)
        context = network.context(0)
        assert context.degree == small_grid.degree(0)
        assert context.closed_degree == small_grid.degree(0) + 1

    def test_are_neighbors(self, small_grid):
        network = Network(small_grid)
        u, v = next(iter(small_grid.edges()))
        assert network.are_neighbors(u, v)

    def test_per_node_rng_deterministic_across_networks(self, small_tree):
        first = Network(small_tree, seed=42)
        second = Network(small_tree, seed=42)
        assert first.context(0).rng.random() == second.context(0).rng.random()

    def test_per_node_rng_differs_between_nodes(self, small_tree):
        network = Network(small_tree, seed=42)
        assert network.context(0).rng.random() != network.context(1).rng.random()

    def test_reset_clears_state(self, small_tree):
        network = Network(small_tree)
        context = network.context(0)
        context.state["marker"] = 1
        context.finish()
        network.reset()
        assert context.state == {}
        assert not context.finished
