"""Differential test harness: the two engines are observationally identical.

The batched engine is only allowed to be *faster* than the reference engine,
never *different*: same per-node outputs, same round counts, same per-round
message/bit/active metrics, same exceptions.  This module runs every core
algorithm on a grid of seeded graph families under both engines and compares
the full observable behavior.

Equality here is strict on purpose.  Several algorithms fold floating point
packing values from their inbox in iteration order, so even the *insertion
order* of inbox entries is part of the observable contract -- comparing
pickled metrics byte-for-byte catches any divergence a tolerant comparison
would mask.

The default grid (every algorithm x four families) keeps tier-1 runs fast;
the exhaustive grid over extra families, sizes and seeds runs under
``pytest -m slow``.
"""

from __future__ import annotations

import pickle

import networkx as nx
import pytest

from repro.congest.engine import available_engines, get_engine, universal_engines
from repro.congest.simulator import run_algorithm
from repro.core.general_graphs import GeneralGraphMDSAlgorithm
from repro.core.randomized import RandomizedMDSAlgorithm
from repro.core.trees import ForestMDSAlgorithm
from repro.core.unknown_params import (
    UnknownArboricityMDSAlgorithm,
    UnknownDegreeMDSAlgorithm,
)
from repro.core.unweighted import UnweightedMDSAlgorithm
from repro.core.weighted import WeightedMDSAlgorithm
from repro.graphs.generators import (
    caterpillar_graph,
    forest_union_graph,
    grid_graph,
    outerplanar_graph,
    planar_triangulation_graph,
    preferential_attachment_graph,
    random_tree,
)
from repro.graphs.validation import is_dominating_set
from repro.graphs.weights import assign_random_weights

# --------------------------------------------------------------------------- #
# The grid
# --------------------------------------------------------------------------- #

#: Seeded graph families.  Each entry is ``name -> (builder, alpha)`` where the
#: builder takes a size knob and a seed.  ``alpha`` is the arboricity bound
#: passed to the algorithms that require it.
FAMILIES = {
    "tree": (lambda size, seed: random_tree(size, seed=seed), 1),
    "grid": (lambda size, seed: grid_graph(5, max(2, size // 5)), 2),
    "forest-union": (lambda size, seed: forest_union_graph(size, alpha=3, seed=seed), 3),
    "ba": (lambda size, seed: preferential_attachment_graph(size, attachment=3, seed=seed), 3),
}

#: Extra families for the exhaustive (slow) grid.
SLOW_FAMILIES = {
    "planar": (lambda size, seed: planar_triangulation_graph(size, seed=seed), 3),
    "outerplanar": (lambda size, seed: outerplanar_graph(size, seed=seed), 2),
    "caterpillar": (lambda size, seed: caterpillar_graph(max(2, size // 4), legs_per_node=3), 1),
    "gnp": (lambda size, seed: nx.gnp_random_graph(size, 0.15, seed=seed), None),
}

#: ``name -> (algorithm factory, needs_weights, run_algorithm kwargs)``.
#: The six core algorithms of the paper plus the unweighted warm-up.
ALGORITHMS = {
    "unweighted": (lambda: UnweightedMDSAlgorithm(epsilon=0.2), False, {}),
    "weighted": (lambda: WeightedMDSAlgorithm(epsilon=0.2), True, {}),
    "randomized": (lambda: RandomizedMDSAlgorithm(t=2), False, {}),
    "general": (lambda: GeneralGraphMDSAlgorithm(k=2), False, {"use_alpha": False}),
    "forest": (lambda: ForestMDSAlgorithm(), False, {"use_alpha": False}),
    "unknown-delta": (
        lambda: UnknownDegreeMDSAlgorithm(epsilon=0.2),
        True,
        {"knows_max_degree": False},
    ),
    "unknown-alpha": (
        lambda: UnknownArboricityMDSAlgorithm(epsilon=0.25),
        True,
        {"use_alpha": False, "knows_max_degree": False},
    ),
}


def _build_graph(family, size, seed, weighted):
    builder, alpha = family
    graph = builder(size, seed)
    if weighted:
        assign_random_weights(graph, 1, 25, seed=seed + 1)
    return graph, alpha


def _run_both(graph, alpha, algorithm_key, seed):
    """Run the algorithm under each engine on a fresh network; return results."""
    factory, _, options = ALGORITHMS[algorithm_key]
    kwargs = dict(seed=seed)
    if options.get("use_alpha", True):
        kwargs["alpha"] = alpha
    if not options.get("knows_max_degree", True):
        kwargs["knows_max_degree"] = False
    return {
        engine: run_algorithm(graph, factory(), engine=engine, **kwargs)
        for engine in universal_engines()
    }


def _assert_observationally_identical(results, label):
    reference = results["reference"]
    # engine_used is the one field that legitimately differs across engines
    # -- it names the tier that ran -- so normalize it before the
    # byte-for-byte metrics comparison below.
    for result in results.values():
        result.metrics.engine_used = None
    for engine, result in results.items():
        if engine == "reference":
            continue
        assert result.outputs == reference.outputs, f"{label}: outputs differ on {engine}"
        assert result.rounds == reference.rounds, f"{label}: rounds differ on {engine}"
        assert result.metrics.total_messages == reference.metrics.total_messages, label
        assert result.metrics.total_bits == reference.metrics.total_bits, label
        assert result.metrics.max_message_bits == reference.metrics.max_message_bits, label
        assert (
            result.metrics.bandwidth_budget_bits == reference.metrics.bandwidth_budget_bits
        ), label
        for ref_round, other_round in zip(
            reference.metrics.per_round, result.metrics.per_round
        ):
            assert ref_round == other_round, f"{label}: round {ref_round.round_index} differs"
        # Belt and braces: the full metrics object, byte for byte.
        assert pickle.dumps(result.metrics) == pickle.dumps(reference.metrics), label


# --------------------------------------------------------------------------- #
# Default grid: every algorithm x four seeded families
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("algorithm_key", sorted(ALGORITHMS))
@pytest.mark.parametrize("family_key", sorted(FAMILIES))
def test_engines_identical(family_key, algorithm_key):
    weighted = ALGORITHMS[algorithm_key][1]
    graph, alpha = _build_graph(FAMILIES[family_key], size=40, seed=13, weighted=weighted)
    results = _run_both(graph, alpha, algorithm_key, seed=13)
    _assert_observationally_identical(results, f"{algorithm_key}/{family_key}")


@pytest.mark.parametrize("algorithm_key", sorted(ALGORITHMS))
def test_dominating_outputs_agree_and_validate(algorithm_key):
    """Both engines select the same, valid dominating set (except the partial
    trees/general corner cases, which still must agree)."""
    weighted = ALGORITHMS[algorithm_key][1]
    graph, alpha = _build_graph(FAMILIES["forest-union"], size=45, seed=5, weighted=weighted)
    results = _run_both(graph, alpha, algorithm_key, seed=5)
    selections = {engine: result.selected_nodes() for engine, result in results.items()}
    reference_selection = selections["reference"]
    assert all(sel == reference_selection for sel in selections.values())
    if algorithm_key != "forest":  # the forest 3-approx is only meaningful on forests
        assert is_dominating_set(graph, reference_selection)


def test_engines_identical_on_edge_case_graphs():
    """Empty, single-node, disconnected and self-loop-free corner graphs."""
    corner_graphs = [
        nx.empty_graph(0),
        nx.empty_graph(1),
        nx.empty_graph(7),  # isolated nodes only
        nx.path_graph(2),
        nx.disjoint_union(nx.path_graph(3), nx.empty_graph(2)),
        nx.star_graph(9),
    ]
    for index, graph in enumerate(corner_graphs):
        results = _run_both(graph, 1, "unweighted", seed=index)
        _assert_observationally_identical(results, f"corner-{index}")


# --------------------------------------------------------------------------- #
# Exhaustive grid (runs under ``pytest -m slow``)
# --------------------------------------------------------------------------- #


@pytest.mark.slow
@pytest.mark.parametrize("algorithm_key", sorted(ALGORITHMS))
@pytest.mark.parametrize("family_key", sorted({**FAMILIES, **SLOW_FAMILIES}))
@pytest.mark.parametrize("size", [12, 60, 120])
@pytest.mark.parametrize("seed", [0, 1, 2022])
def test_engines_identical_exhaustive(family_key, algorithm_key, size, seed):
    families = {**FAMILIES, **SLOW_FAMILIES}
    weighted = ALGORITHMS[algorithm_key][1]
    graph, alpha = _build_graph(families[family_key], size=size, seed=seed, weighted=weighted)
    if alpha is None:  # gnp: certify an arboricity bound via degeneracy
        from repro.graphs.arboricity import arboricity_upper_bound

        alpha = max(1, arboricity_upper_bound(graph))
    results = _run_both(graph, alpha, algorithm_key, seed=seed)
    _assert_observationally_identical(
        results, f"{algorithm_key}/{family_key}/n={size}/seed={seed}"
    )


def test_engines_identical_with_type_punned_payloads():
    """Payload values that compare equal but differ in type (1 == 1.0 == True)
    have different wire-format sizes; the batched engine's bit-estimate memo
    must not conflate them (regression test)."""
    from repro.congest.algorithm import SynchronousAlgorithm
    from repro.congest.message import Broadcast

    class TypePunned(SynchronousAlgorithm):
        name = "type-punned"

        def round(self, node, round_index, inbox):
            payloads = [{"v": 1.0}, {"v": 1}, {"v": True}, {"v": 1.0}]
            if round_index < len(payloads):
                return Broadcast(payloads[round_index])
            node.state["output"] = sorted(
                (type(m["v"]).__name__, m["v"]) for m in inbox.values()
            )
            node.finish()
            return None

    graph = nx.path_graph(5)
    results = {
        engine: run_algorithm(graph, TypePunned(), engine=engine)
        for engine in universal_engines()
    }
    reference = results["reference"]
    for result in results.values():
        result.metrics.engine_used = None
    for engine, result in results.items():
        assert result.outputs == reference.outputs, engine
        assert pickle.dumps(result.metrics) == pickle.dumps(reference.metrics), engine
    # float (2 words) costs more than int 1 (2 bits) and bool (1 bit);
    # per-round bits must reflect each round's actual payload type.
    per_round_bits = [r.bits for r in reference.metrics.per_round]
    assert per_round_bits[0] > per_round_bits[1] > per_round_bits[2]
    assert per_round_bits[3] == per_round_bits[0]


# --------------------------------------------------------------------------- #
# Engine registry behavior
# --------------------------------------------------------------------------- #


class TestEngineRegistry:
    def test_available_engines(self):
        assert set(available_engines()) >= {"reference", "batched"}

    def test_get_engine_accepts_instances_and_classes(self):
        from repro.congest.engine import BatchedEngine, ReferenceEngine

        instance = BatchedEngine()
        assert get_engine(instance) is instance
        assert isinstance(get_engine(ReferenceEngine), ReferenceEngine)
        assert get_engine("reference").name == "reference"

    def test_get_engine_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("warp-drive")

    def test_default_engine_roundtrip(self):
        from repro.congest.engine import get_default_engine, set_default_engine

        original = get_default_engine()
        try:
            previous = set_default_engine("batched")
            assert previous == original
            assert get_engine(None).name == "batched"
        finally:
            set_default_engine(original)

    def test_set_default_engine_rejects_unknown(self):
        from repro.congest.engine import set_default_engine

        with pytest.raises(ValueError, match="unknown engine"):
            set_default_engine("warp-drive")
