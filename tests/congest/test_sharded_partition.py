"""Property tests (hypothesis) for the sharded tier's partition layer.

The round-trip invariants :mod:`repro.congest.sharded.partition` promises:

* **ownership** is a disjoint cover: every global node is owned by exactly
  one shard, and ``shards == 1`` is the identity partition;
* **local rows** are a lossless re-encoding: decoding every shard's own
  CSR rows back to global ids reproduces the global directed edge list
  exactly -- same neighbors, same within-row order -- while halo rows stay
  empty;
* **boundary lanes** mirror positionally: each directed pair's out-lane on
  the sender equals the in-lane on the receiver node for node and edge for
  edge, in canonical ``(u_global, v_global)`` order, and every cross edge
  appears in exactly one out-lane;
* ``node_counts``/``edge_counts`` agree with the materialised lane widths
  (they size the shared-memory block, so an off-by-one is a heap smash).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.sharded.partition import build_partition, shard_owner
from repro.graphs import large_scale
from repro.graphs.generators import random_bounded_arboricity_graph

FAST = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

partition_params = dict(
    n=st.integers(min_value=0, max_value=60),
    alpha=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10 ** 6),
    shards=st.integers(min_value=1, max_value=7),
)


def _random_plan(n, alpha, seed, shards):
    graph = random_bounded_arboricity_graph(n, alpha=alpha, seed=seed)
    csr = large_scale.csr_from_networkx(graph)
    weights = csr.weight_array()
    return csr, build_partition(csr.indptr, csr.indices, weights, shards)


def _local_to_global(spec):
    return np.concatenate([spec.own, spec.halo]).astype(np.int64)


class TestOwnership:
    @FAST
    @given(**partition_params)
    def test_owner_is_a_disjoint_cover(self, n, alpha, seed, shards):
        owner = shard_owner(n, shards)
        assert owner.shape == (n,)
        assert ((owner >= 0) & (owner < shards)).all()
        csr, plan = _random_plan(n, alpha, seed, shards)
        covered = np.concatenate([spec.own for spec in plan.specs]) if n else np.empty(0)
        assert sorted(covered.tolist()) == list(range(n))

    def test_single_shard_is_identity(self):
        owner = shard_owner(100, 1)
        assert (owner == 0).all()


class TestLocalRows:
    @FAST
    @given(**partition_params)
    def test_every_directed_edge_in_exactly_one_shard(self, n, alpha, seed, shards):
        """Decoding own rows reproduces the global edge list, order intact."""
        csr, plan = _random_plan(n, alpha, seed, shards)
        rebuilt = {}
        for spec in plan.specs:
            mapping = _local_to_global(spec)
            for row in range(spec.own_count):
                u = int(spec.own[row])
                local_row = spec.indices[spec.indptr[row]:spec.indptr[row + 1]]
                assert u not in rebuilt, "own node appears in two shards"
                rebuilt[u] = mapping[local_row].tolist()
            # Halo rows carry no edges: their state arrives via lanes only.
            for halo_row in range(spec.own_count, spec.local_n):
                assert spec.indptr[halo_row] == spec.indptr[halo_row + 1]
        for u in range(n):
            expected = csr.indices[csr.indptr[u]:csr.indptr[u + 1]].tolist()
            assert rebuilt.get(u, []) == expected

    @FAST
    @given(**partition_params)
    def test_local_weights_follow_the_node_mapping(self, n, alpha, seed, shards):
        csr, plan = _random_plan(n, alpha, seed, shards)
        weights = csr.weight_array()
        for spec in plan.specs:
            assert np.array_equal(spec.weights, weights[_local_to_global(spec)])


class TestBoundaryLanes:
    @FAST
    @given(**partition_params)
    def test_lanes_mirror_and_cover_cross_edges(self, n, alpha, seed, shards):
        csr, plan = _random_plan(n, alpha, seed, shards)
        owner = plan.owner
        # Global cross-edge census per directed shard pair.
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.indptr))
        dst = csr.indices.astype(np.int64)
        cross = owner[src] != owner[dst] if n else np.empty(0, dtype=bool)
        for a in range(shards):
            sender = plan.specs[a]
            for b in range(shards):
                if a == b:
                    continue
                pair = cross & (owner[src] == a) & (owner[dst] == b) if n else cross
                pair_count = int(pair.sum()) if n else 0
                assert int(plan.edge_counts[a, b]) == pair_count
                receiver = plan.specs[b]
                out_keys = sender.out_edge_keys.get(b)
                if pair_count == 0:
                    assert out_keys is None
                    assert b not in sender.out_nodes
                    continue
                # Sender lane decodes to the (u_global, v_global) census.
                rows, locals_ = out_keys // sender.local_n, out_keys % sender.local_n
                sender_map = _local_to_global(sender)
                u_out = sender.own[rows]
                v_out = sender_map[locals_]
                expected = np.lexsort((dst[pair], src[pair]))
                assert u_out.tolist() == src[pair][expected].tolist()
                assert v_out.tolist() == dst[pair][expected].tolist()
                # Receiver mirror: same edges, same canonical order.
                receiver_map = _local_to_global(receiver)
                assert receiver.in_send_global[a].tolist() == u_out.tolist()
                assert receiver_map[receiver.in_recv[a]].tolist() == v_out.tolist()
                assert np.array_equal(
                    receiver_map[receiver.in_send[a]], receiver.in_send_global[a]
                )
                # in_edge_pos names the receiver-row CSR slot of v -> u.
                pos = receiver.in_edge_pos[a]
                assert np.array_equal(receiver.indices[pos], receiver.in_send[a])
                row_of_pos = np.searchsorted(receiver.indptr, pos, side="right") - 1
                assert np.array_equal(row_of_pos, receiver.in_recv[a])
                # Node lanes: sender's boundary rows, ascending global, and
                # the receiver's positionally identical halo mirror.
                out_nodes = sender.out_nodes[b]
                assert int(plan.node_counts[a, b]) == out_nodes.size
                assert sender.own[out_nodes].tolist() == sorted(set(u_out.tolist()))
                assert receiver_map[receiver.in_nodes[a]].tolist() == (
                    sender.own[out_nodes].tolist()
                )

    @FAST
    @given(**partition_params)
    def test_halo_is_exactly_the_foreign_neighbors(self, n, alpha, seed, shards):
        csr, plan = _random_plan(n, alpha, seed, shards)
        owner = plan.owner
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.indptr))
        dst = csr.indices.astype(np.int64)
        for spec in plan.specs:
            mine = owner[src] == spec.index if n else np.empty(0, dtype=bool)
            foreign = dst[mine][owner[dst[mine]] != spec.index] if n else dst
            assert spec.halo.tolist() == sorted(set(foreign.tolist()))
