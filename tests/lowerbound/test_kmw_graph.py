"""Tests for the KMW-style base graphs."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.lowerbound.kmw_graph import (
    KMWBaseGraph,
    bipartite_regular_base_graph,
    layered_cluster_tree_graph,
)


class TestBipartiteRegular:
    def test_is_bipartite(self):
        base = bipartite_regular_base_graph(8, 3, seed=1)
        assert base.is_bipartite

    def test_has_enough_edges(self):
        base = bipartite_regular_base_graph(8, 3, seed=2)
        assert base.has_enough_edges
        base.validate()

    def test_node_count(self):
        base = bipartite_regular_base_graph(10, 2, seed=3)
        assert base.n == 20

    def test_near_regular_degrees(self):
        base = bipartite_regular_base_graph(12, 3, seed=4)
        degrees = dict(base.graph.degree()).values()
        assert max(degrees) <= 3
        assert min(degrees) >= 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            bipartite_regular_base_graph(1, 3)
        with pytest.raises(ValueError):
            bipartite_regular_base_graph(5, 1)

    def test_deterministic(self):
        first = bipartite_regular_base_graph(8, 3, seed=7)
        second = bipartite_regular_base_graph(8, 3, seed=7)
        assert set(first.graph.edges()) == set(second.graph.edges())


class TestLayeredClusterTree:
    def test_is_bipartite(self):
        base = layered_cluster_tree_graph(3, 2)
        assert base.is_bipartite

    def test_has_enough_edges(self):
        base = layered_cluster_tree_graph(3, 3)
        assert base.has_enough_edges
        base.validate()

    def test_level_sizes(self):
        base = layered_cluster_tree_graph(2, 3)
        # 1 + 3 + 9 = 13 nodes.
        assert base.n == 13

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            layered_cluster_tree_graph(1, 2)
        with pytest.raises(ValueError):
            layered_cluster_tree_graph(3, 1)


class TestValidation:
    def test_non_bipartite_rejected(self):
        instance = KMWBaseGraph(graph=nx.cycle_graph(5), description="odd-cycle")
        with pytest.raises(ValueError):
            instance.validate()

    def test_sparse_graph_rejected(self):
        instance = KMWBaseGraph(graph=nx.path_graph(5), description="path")
        assert not instance.has_enough_edges
        with pytest.raises(ValueError):
            instance.validate()

    def test_properties_exposed(self):
        base = bipartite_regular_base_graph(6, 2, seed=0)
        # The wrap-around patch may add one extra edge per node on small sides.
        assert base.max_degree <= 2 + 2
        assert base.m >= base.n
