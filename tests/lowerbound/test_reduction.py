"""Tests for the Figure 1 construction and the DS -> fractional VC reduction."""

from __future__ import annotations

import pytest

from repro import RunSpec, execute
from repro.baselines.exact import exact_minimum_dominating_set
from repro.baselines.greedy import greedy_dominating_set
from repro.baselines.lp import fractional_vertex_cover_lp
from repro.graphs.arboricity import arboricity
from repro.lowerbound.kmw_graph import bipartite_regular_base_graph, layered_cluster_tree_graph
from repro.lowerbound.reduction import (
    build_lower_bound_graph,
    extract_fractional_vertex_cover,
    verify_structural_properties,
)


def solve_mds(graph, alpha=None, epsilon=0.1):
    return execute(
        RunSpec(graph=graph, algorithm="deterministic",
                params={"epsilon": epsilon}, alpha=alpha)
    )


@pytest.fixture
def small_instance():
    base = bipartite_regular_base_graph(5, 3, seed=1)
    return build_lower_bound_graph(base, copies=4)


class TestConstruction:
    def test_node_and_edge_counts_match_section5(self, small_instance):
        assert small_instance.n_h == small_instance.expected_node_count()
        assert small_instance.m_h == small_instance.expected_edge_count()

    def test_default_copy_count_is_delta_squared(self):
        base = bipartite_regular_base_graph(4, 2, seed=2)
        instance = build_lower_bound_graph(base)
        assert instance.copies == base.max_degree ** 2

    def test_t_node_degrees(self, small_instance):
        for t_node in small_instance.t_nodes:
            assert small_instance.graph.degree(t_node) == small_instance.copies

    def test_middle_nodes_have_degree_two(self, small_instance):
        for middle in small_instance.middle_nodes:
            assert small_instance.graph.degree(middle) == 2

    def test_arboricity_is_two(self):
        base = bipartite_regular_base_graph(4, 2, seed=3)
        instance = build_lower_bound_graph(base, copies=3)
        assert arboricity(instance.graph) == 2

    def test_structural_checks_pass(self, small_instance):
        checks = verify_structural_properties(small_instance)
        assert all(checks.values()), checks

    def test_structural_checks_with_exact_arboricity(self):
        base = bipartite_regular_base_graph(4, 2, seed=4)
        instance = build_lower_bound_graph(base, copies=2)
        checks = verify_structural_properties(instance, check_arboricity=True)
        assert checks["arboricity_is_2"]

    def test_invalid_copies(self):
        base = bipartite_regular_base_graph(4, 2, seed=5)
        with pytest.raises(ValueError):
            build_lower_bound_graph(base, copies=0)

    def test_layered_base_also_works(self):
        base = layered_cluster_tree_graph(2, 2)
        instance = build_lower_bound_graph(base, copies=3)
        assert all(verify_structural_properties(instance).values())


class TestEquationTwo:
    def test_opt_mds_upper_bound(self):
        """Eq. (2): OPT_MDS(H) <= copies * OPT_MVC(G) + n, checked on a small instance."""
        base = bipartite_regular_base_graph(4, 2, seed=6)
        instance = build_lower_bound_graph(base, copies=2)
        _, opt_h = exact_minimum_dominating_set(instance.graph)
        # On a bipartite base graph, OPT_MVC equals the fractional optimum.
        _, opt_mfvc = fractional_vertex_cover_lp(base.graph)
        assert opt_h <= instance.copies * opt_mfvc + base.n + 1e-6


class TestExtraction:
    def test_extraction_from_paper_algorithm(self, small_instance):
        result = solve_mds(small_instance.graph, alpha=2, epsilon=0.3)
        fractional = extract_fractional_vertex_cover(small_instance, result.dominating_set)
        base = small_instance.base
        # Feasibility: every base edge is fractionally covered.
        for u, v in base.graph.edges():
            assert fractional[u] + fractional[v] >= 1 - 1e-9
        # Value bound: sum(y) <= |S| / copies.
        assert sum(fractional.values()) <= len(result.dominating_set) / small_instance.copies + 1e-9

    def test_extraction_preserves_approximation(self, small_instance):
        """A c-approximate DS yields a <= c*(1+1/Delta)-approximate fractional VC."""
        base = small_instance.base
        result = solve_mds(small_instance.graph, alpha=2, epsilon=0.3)
        _, opt_h = exact_minimum_dominating_set(small_instance.graph)
        ds_ratio = len(result.dominating_set) / opt_h
        fractional = extract_fractional_vertex_cover(small_instance, result.dominating_set)
        _, opt_mfvc = fractional_vertex_cover_lp(base.graph)
        vc_ratio = sum(fractional.values()) / opt_mfvc
        assert vc_ratio <= ds_ratio * (base.max_degree ** 2 + base.max_degree) / small_instance.copies * (1 + 1e-6) + 1e-6 or vc_ratio <= ds_ratio * (1 + 1.0 / base.max_degree) + 1e-6

    def test_extraction_from_greedy(self, small_instance):
        solution, _ = greedy_dominating_set(small_instance.graph)
        fractional = extract_fractional_vertex_cover(small_instance, solution)
        for u, v in small_instance.base.graph.edges():
            assert fractional[u] + fractional[v] >= 1 - 1e-9

    def test_extraction_rejects_non_dominating_input(self, small_instance):
        with pytest.raises(ValueError):
            extract_fractional_vertex_cover(small_instance, set())

    def test_full_vertex_set_gives_trivial_cover(self, small_instance):
        fractional = extract_fractional_vertex_cover(
            small_instance, set(small_instance.graph.nodes())
        )
        assert all(value >= 1 - 1e-9 for value in fractional.values())
