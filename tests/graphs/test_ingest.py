"""SNAP-style edge-list ingestion: parsing, canonicalisation, registry, wire."""

from __future__ import annotations

import gzip

import numpy as np
import pytest

from repro.graphs.ingest import (
    available_graphs,
    get_graph,
    ingest_edge_list,
    load_edge_list,
    register_graph,
    registered_name,
    unregister_graph,
)
from repro.graphs.large_scale import CSRGraph
from repro.run import RunSpec, Session, result_bytes


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "toy.txt"
    path.write_text(
        "# Directed graph (each unordered pair of nodes is saved once)\n"
        "# FromNodeId\tToNodeId\n"
        "10 20\n"
        "20\t30\n"
        "30 10\n"
        "30 10\n"      # duplicate (after canonicalisation)
        "10 30\n"      # reversed duplicate
        "40 40\n"      # self-loop
        "40 50\n"
        "\n"
    )
    return str(path)


class TestParsing:
    def test_basic_shape(self, edge_file):
        graph = ingest_edge_list(edge_file)
        assert isinstance(graph, CSRGraph)
        # Node ids 10,20,30,40,50 remap densely to 0..4.
        assert graph.n == 5
        assert graph.m == 4  # 3 triangle edges + 40-50
        assert graph.params["self_loops_dropped"] == 1
        assert graph.params["duplicates_dropped"] == 2
        assert graph.params["source_path"] == edge_file
        assert graph.name == "toy"

    def test_gzip_transparent(self, tmp_path, edge_file):
        zipped = tmp_path / "toy2.txt.gz"
        with gzip.open(zipped, "wt") as stream:
            stream.write(open(edge_file).read())
        plain = ingest_edge_list(edge_file)
        packed = ingest_edge_list(str(zipped))
        assert packed.n == plain.n and packed.m == plain.m
        assert np.array_equal(packed.indptr, plain.indptr)
        assert np.array_equal(packed.indices, plain.indices)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        graph = ingest_edge_list(str(path))
        assert graph.n == 0 and graph.m == 0

    def test_comments_only(self, tmp_path):
        path = tmp_path / "comments.txt"
        path.write_text("# nothing\n# here\n")
        graph = ingest_edge_list(str(path))
        assert graph.n == 0 and graph.m == 0

    def test_malformed_line_names_line_number(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\nnot numbers\n")
        with pytest.raises(ValueError, match="line 2"):
            ingest_edge_list(str(path))

    def test_single_column_rejected(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("0 1\n7\n")
        with pytest.raises(ValueError, match="line 2"):
            ingest_edge_list(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            ingest_edge_list(str(tmp_path / "nope.txt"))

    def test_extra_columns_ignored(self, tmp_path):
        # SNAP exports sometimes carry timestamps/weights in later columns.
        path = tmp_path / "cols.txt"
        path.write_text("0 1 1234\n1 2 9999\n")
        graph = ingest_edge_list(str(path))
        assert graph.n == 3 and graph.m == 2


class TestLoadCache:
    def test_memoized_by_path(self, edge_file):
        first = load_edge_list(edge_file)
        second = load_edge_list(edge_file)
        assert first is second

    def test_reloads_after_edit(self, tmp_path):
        import os

        path = tmp_path / "grow.txt"
        path.write_text("0 1\n")
        first = load_edge_list(str(path))
        assert first.m == 1
        path.write_text("0 1\n1 2\n")
        os.utime(path, ns=(1, 1))  # force a distinct mtime_ns
        second = load_edge_list(str(path))
        assert second is not first
        assert second.m == 2


class TestRegistry:
    def test_register_and_lookup(self, edge_file):
        graph = ingest_edge_list(edge_file, name="toy-reg")
        register_graph("toy-reg", graph)
        try:
            assert get_graph("toy-reg") is graph
            assert "toy-reg" in available_graphs()
            assert registered_name(graph) == "toy-reg"
        finally:
            unregister_graph("toy-reg")
        assert registered_name(graph) is None

    def test_duplicate_name_rejected(self, edge_file):
        graph = ingest_edge_list(edge_file)
        register_graph("toy-dup", graph)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_graph("toy-dup", graph)
            register_graph("toy-dup", graph, replace=True)  # explicit is fine
        finally:
            unregister_graph("toy-dup")

    def test_unknown_name_lists_known(self, edge_file):
        graph = ingest_edge_list(edge_file)
        register_graph("toy-known", graph)
        try:
            with pytest.raises(KeyError, match="toy-known"):
                get_graph("toy-unknown")
        finally:
            unregister_graph("toy-known")


class TestWireIntegration:
    def test_file_form_round_trip_returns_same_object(self, edge_file):
        graph = load_edge_list(edge_file)
        wire = RunSpec(graph=graph).to_dict()
        assert wire["graph"] == {"kind": "file", "path": edge_file}
        assert RunSpec.from_dict(wire).graph is graph

    def test_named_form_round_trip(self, edge_file):
        graph = ingest_edge_list(edge_file)
        register_graph("toy-wire", graph)
        try:
            wire = RunSpec(graph=graph).to_dict()
            assert wire["graph"] == {"kind": "named", "name": "toy-wire"}
            assert RunSpec.from_dict(wire).graph is graph
        finally:
            unregister_graph("toy-wire")

    def test_ingested_graph_is_runnable(self, edge_file):
        spec = RunSpec(graph=load_edge_list(edge_file), algorithm="deterministic")
        session = Session()
        result = session.run(spec)
        assert result.is_valid
        # The identity-keyed compile cache sees one graph across the wire.
        decoded = RunSpec.from_dict(spec.to_dict())
        assert result_bytes(session.run(decoded)) == result_bytes(result)
        assert session.compiled_count == 1
