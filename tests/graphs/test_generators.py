"""Tests for the graph family generators."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.arboricity import arboricity, degeneracy
from repro.graphs.generators import (
    GraphInstance,
    caterpillar_graph,
    forest_union_graph,
    grid_graph,
    outerplanar_graph,
    planar_triangulation_graph,
    preferential_attachment_graph,
    random_bounded_arboricity_graph,
    random_forest,
    random_tree,
    standard_test_suite,
    star_of_cliques,
)


class TestRandomTree:
    def test_is_tree(self):
        for n in (1, 2, 3, 10, 50):
            graph = random_tree(n, seed=n)
            if n >= 1:
                assert graph.number_of_nodes() == n
            if n >= 2:
                assert nx.is_tree(graph)

    def test_deterministic_given_seed(self):
        assert set(random_tree(30, seed=4).edges()) == set(random_tree(30, seed=4).edges())

    def test_different_seeds_differ(self):
        assert set(random_tree(30, seed=1).edges()) != set(random_tree(30, seed=2).edges())

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            random_tree(-1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=1000))
    def test_always_tree(self, n, seed):
        graph = random_tree(n, seed=seed)
        assert graph.number_of_edges() == n - 1
        assert nx.is_connected(graph)


class TestRandomForest:
    def test_is_forest(self):
        graph = random_forest(40, tree_count=4, seed=1)
        assert nx.is_forest(graph)
        assert graph.number_of_nodes() == 40

    def test_component_count_at_least_tree_count(self):
        graph = random_forest(40, tree_count=4, seed=2)
        assert nx.number_connected_components(graph) >= 4

    def test_invalid_tree_count(self):
        with pytest.raises(ValueError):
            random_forest(10, tree_count=0)


class TestCaterpillar:
    def test_is_tree(self, small_caterpillar):
        assert nx.is_tree(small_caterpillar)

    def test_node_count(self):
        graph = caterpillar_graph(6, legs_per_node=2)
        assert graph.number_of_nodes() == 6 + 6 * 2

    def test_invalid_spine(self):
        with pytest.raises(ValueError):
            caterpillar_graph(0)


class TestGrid:
    def test_node_and_edge_count(self):
        graph = grid_graph(3, 4)
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 3 * 3 + 2 * 4

    def test_planar(self):
        is_planar, _ = nx.check_planarity(grid_graph(5, 5))
        assert is_planar

    def test_diagonal_variant_has_more_edges(self):
        assert grid_graph(4, 4, diagonal=True).number_of_edges() > grid_graph(4, 4).number_of_edges()

    def test_arboricity_at_most_two(self):
        assert arboricity(grid_graph(4, 5)) <= 2


class TestPlanarTriangulation:
    def test_planarity(self, small_planar):
        is_planar, _ = nx.check_planarity(small_planar)
        assert is_planar

    def test_arboricity_at_most_three(self, small_planar):
        assert arboricity(small_planar) <= 3

    def test_tiny_instances_fall_back_to_trees(self):
        assert nx.is_tree(planar_triangulation_graph(2, seed=1)) or planar_triangulation_graph(2, seed=1).number_of_edges() <= 1

    def test_connected(self, small_planar):
        assert nx.is_connected(small_planar)


class TestOuterplanar:
    def test_edge_bound(self, small_outerplanar):
        n = small_outerplanar.number_of_nodes()
        assert small_outerplanar.number_of_edges() <= 2 * n - 3

    def test_arboricity_at_most_two(self, small_outerplanar):
        assert arboricity(small_outerplanar) <= 2

    def test_planar(self, small_outerplanar):
        is_planar, _ = nx.check_planarity(small_outerplanar)
        assert is_planar


class TestForestUnion:
    @pytest.mark.parametrize("alpha", [1, 2, 3, 5])
    def test_arboricity_bounded(self, alpha):
        graph = forest_union_graph(35, alpha=alpha, seed=alpha)
        assert arboricity(graph) <= alpha

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            forest_union_graph(10, alpha=0)

    def test_connected_for_alpha_ge_one(self):
        assert nx.is_connected(forest_union_graph(40, alpha=2, seed=3))


class TestRandomBoundedArboricity:
    @pytest.mark.parametrize("alpha", [1, 2, 4])
    def test_degeneracy_bounded(self, alpha):
        graph = random_bounded_arboricity_graph(60, alpha=alpha, seed=alpha)
        assert degeneracy(graph) <= alpha

    def test_edge_probability_zero_gives_empty(self):
        graph = random_bounded_arboricity_graph(20, alpha=2, edge_probability=0.0, seed=1)
        assert graph.number_of_edges() == 0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            random_bounded_arboricity_graph(10, alpha=0)


class TestPreferentialAttachment:
    def test_degeneracy_bounded_by_attachment(self, small_ba):
        assert degeneracy(small_ba) <= 3

    def test_has_skewed_degrees(self, small_ba):
        degrees = sorted(dict(small_ba.degree()).values())
        assert degrees[-1] >= 3 * degrees[0]

    def test_small_n_falls_back_to_tree(self):
        graph = preferential_attachment_graph(3, attachment=5, seed=1)
        assert nx.is_forest(graph)


class TestStarOfCliques:
    def test_node_count(self):
        graph = star_of_cliques(3, 4)
        assert graph.number_of_nodes() == 1 + 3 * 4

    def test_hub_degree(self):
        graph = star_of_cliques(4, 5)
        assert graph.degree(0) == 20

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            star_of_cliques(0, 3)


class TestStandardSuite:
    def test_contains_expected_families(self):
        suite = standard_test_suite("tiny", seed=0)
        names = {instance.name for instance in suite}
        assert {"random-tree", "grid", "planar-triangulation", "forest-union-alpha3"} <= names

    def test_alpha_certificates_hold(self):
        for instance in standard_test_suite("tiny", seed=1):
            assert arboricity(instance.graph) <= instance.alpha

    def test_scales_are_ordered(self):
        tiny = sum(instance.n for instance in standard_test_suite("tiny"))
        small = sum(instance.n for instance in standard_test_suite("small"))
        assert tiny < small

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            standard_test_suite("huge")

    def test_instance_properties(self):
        instance = standard_test_suite("tiny")[0]
        assert isinstance(instance, GraphInstance)
        assert instance.n == instance.graph.number_of_nodes()
        assert instance.m == instance.graph.number_of_edges()
        assert instance.max_degree == max(dict(instance.graph.degree()).values())
