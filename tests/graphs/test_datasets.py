"""SNAP dataset download helpers, exercised fully offline.

``download_dataset`` accepts an injectable ``fetcher`` (``fetch(url) ->
bytes``), so these tests never touch the network: a fixture "server"
serves a gzip'd toy edge list from memory and counts its calls.  Covered:
cache short-circuit, strict sha256 pinning (match and mismatch, with the
corrupt payload removed), trust-on-first-use sidecar digests for unpinned
datasets, ``force`` re-download, ``load_dataset`` ingestion, the registry
surface, and the ingest progress counters.
"""

from __future__ import annotations

import dataclasses
import gzip
import os

import pytest

from repro.graphs.datasets import (
    DATASETS,
    DatasetSpec,
    DatasetVerificationError,
    available_datasets,
    dataset_path,
    download_dataset,
    load_dataset,
    sha256_file,
)
from repro.graphs.ingest import ingest_edge_list, ingest_metrics
from repro.graphs.large_scale import CSRGraph

PAYLOAD = gzip.compress(
    b"# toy SNAP export\n"
    b"0 1\n"
    b"1 2\n"
    b"2 0\n"
    b"2 3\n"
)


@pytest.fixture
def fake_fetcher():
    calls = []

    def fetcher(url):
        calls.append(url)
        return PAYLOAD

    fetcher.calls = calls
    return fetcher


def _pin(monkeypatch, sha256):
    """Register a throwaway dataset spec pinned (or not) to ``sha256``."""
    spec = DatasetSpec(
        name="toy",
        url="https://example.invalid/toy.txt.gz",
        filename="toy.txt.gz",
        description="four-edge fixture",
        nodes=4,
        edges=4,
        sha256=sha256,
    )
    monkeypatch.setitem(DATASETS, "toy", spec)
    return spec


class TestRegistry:
    def test_real_catalog_names(self):
        names = available_datasets()
        assert {"ca-grqc", "ego-facebook", "roadnet-pa"} <= set(names)
        assert list(names) == sorted(names)

    def test_unknown_dataset_lists_choices(self, tmp_path):
        with pytest.raises(KeyError, match="ca-grqc"):
            download_dataset("no-such-set", data_dir=str(tmp_path))

    def test_dataset_path_is_spec_filename(self, tmp_path):
        expected = os.path.join(str(tmp_path), DATASETS["ca-grqc"].filename)
        assert dataset_path("ca-grqc", data_dir=str(tmp_path)) == expected

    def test_catalog_specs_are_frozen_and_complete(self):
        for spec in DATASETS.values():
            with pytest.raises(dataclasses.FrozenInstanceError):
                spec.url = "tampered"  # type: ignore[misc]
            assert spec.filename.endswith(".gz")
            assert spec.nodes > 0 and spec.edges > 0


class TestDownload:
    def test_download_then_cache(self, monkeypatch, tmp_path, fake_fetcher):
        _pin(monkeypatch, None)
        first = download_dataset("toy", data_dir=str(tmp_path), fetcher=fake_fetcher)
        second = download_dataset("toy", data_dir=str(tmp_path), fetcher=fake_fetcher)
        assert first == second == os.path.join(str(tmp_path), "toy.txt.gz")
        assert fake_fetcher.calls == ["https://example.invalid/toy.txt.gz"]
        with open(first, "rb") as stream:
            assert stream.read() == PAYLOAD

    def test_strict_pin_accepts_matching_digest(self, monkeypatch, tmp_path, fake_fetcher):
        reference = tmp_path / "reference.gz"
        reference.write_bytes(PAYLOAD)
        _pin(monkeypatch, sha256_file(str(reference)))
        path = download_dataset("toy", data_dir=str(tmp_path), fetcher=fake_fetcher)
        assert os.path.exists(path)

    def test_strict_pin_rejects_and_removes_corrupt_payload(
        self, monkeypatch, tmp_path, fake_fetcher
    ):
        _pin(monkeypatch, "0" * 64)
        with pytest.raises(DatasetVerificationError, match="sha256 mismatch"):
            download_dataset("toy", data_dir=str(tmp_path), fetcher=fake_fetcher)
        # The corrupt file must not survive to satisfy the next cache check.
        assert not os.path.exists(os.path.join(str(tmp_path), "toy.txt.gz"))

    def test_unpinned_writes_then_enforces_sidecar(
        self, monkeypatch, tmp_path, fake_fetcher
    ):
        _pin(monkeypatch, None)
        path = download_dataset("toy", data_dir=str(tmp_path), fetcher=fake_fetcher)
        sidecar = path + ".sha256"
        with open(sidecar) as stream:
            assert stream.read().split()[0] == sha256_file(path)
        # Trust-on-first-use: a later tampered payload trips the sidecar.
        with open(path, "ab") as stream:
            stream.write(b"tamper\n")
        with pytest.raises(DatasetVerificationError, match="sha256 mismatch"):
            download_dataset("toy", data_dir=str(tmp_path), fetcher=fake_fetcher)

    def test_force_redownloads_and_repins(self, monkeypatch, tmp_path, fake_fetcher):
        _pin(monkeypatch, None)
        path = download_dataset("toy", data_dir=str(tmp_path), fetcher=fake_fetcher)
        download_dataset("toy", data_dir=str(tmp_path), fetcher=fake_fetcher, force=True)
        assert fake_fetcher.calls == [DATASETS["toy"].url] * 2
        with open(path + ".sha256") as stream:
            assert stream.read().split()[0] == sha256_file(path)

    def test_fetcher_failure_leaves_no_file(self, monkeypatch, tmp_path):
        _pin(monkeypatch, None)

        def broken(url):
            raise OSError("connection reset")

        with pytest.raises(OSError, match="connection reset"):
            download_dataset("toy", data_dir=str(tmp_path), fetcher=broken)
        assert os.listdir(str(tmp_path)) == []


class TestLoad:
    def test_load_dataset_ingests(self, monkeypatch, tmp_path, fake_fetcher):
        _pin(monkeypatch, None)
        graph = load_dataset("toy", data_dir=str(tmp_path), fetcher=fake_fetcher)
        assert isinstance(graph, CSRGraph)
        assert graph.name == "toy"
        assert graph.n == 4 and graph.m == 4


class TestIngestProgress:
    def test_counters_advance_per_file(self, tmp_path):
        path = tmp_path / "progress.txt"
        path.write_text("".join(f"{i} {i + 1}\n" for i in range(100)))
        files = ingest_metrics.counter("repro_ingest_files_total")
        lines = ingest_metrics.counter("repro_ingest_lines_total")
        edges = ingest_metrics.counter("repro_ingest_edges_total")
        before = (files.value, lines.value, edges.value)
        graph = ingest_edge_list(str(path))
        assert graph.m == 100
        assert files.value == before[0] + 1
        assert lines.value == before[1] + 100
        assert edges.value == before[2] + 100

    def test_scan_bytes_cover_both_passes(self, tmp_path):
        path = tmp_path / "bytes.txt"
        body = "".join(f"{i} {i + 1}\n" for i in range(50))
        path.write_text(body)
        counters = {
            phase: ingest_metrics.counter(
                "repro_ingest_scan_bytes_total", phase=phase
            )
            for phase in ("count", "fill")
        }
        before = {phase: counter.value for phase, counter in counters.items()}
        ingest_edge_list(str(path))
        for phase, counter in counters.items():
            assert counter.value - before[phase] == len(body)

    def test_render_exposes_ingest_series(self, tmp_path):
        path = tmp_path / "render.txt"
        path.write_text("0 1\n")
        ingest_edge_list(str(path))
        rendered = ingest_metrics.render()
        assert "# TYPE repro_ingest_scan_bytes_total counter" in rendered
        assert 'repro_ingest_scan_bytes_total{phase="count"}' in rendered
        assert "repro_ingest_files_total" in rendered
