"""Tests for low out-degree orientations and edge partitions."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.arboricity import arboricity, degeneracy, pseudoarboricity
from repro.graphs.orientation import (
    barenboim_elkin_orientation,
    degeneracy_orientation,
    minimum_outdegree_orientation,
    orientation_outdegrees,
    pseudoforest_partition,
    spanning_forest_partition,
)
from repro.graphs.validation import is_forest_partition, is_pseudoforest, is_valid_orientation


class TestDegeneracyOrientation:
    def test_covers_every_edge(self, small_forest_union):
        orientation = degeneracy_orientation(small_forest_union)
        assert set(orientation) == set(small_forest_union.edges())

    def test_valid_and_bounded_by_degeneracy(self, small_forest_union):
        orientation = degeneracy_orientation(small_forest_union)
        bound = degeneracy(small_forest_union)
        assert is_valid_orientation(small_forest_union, orientation, max_outdegree=bound)

    def test_tree_outdegree_one(self, small_tree):
        orientation = degeneracy_orientation(small_tree)
        assert is_valid_orientation(small_tree, orientation, max_outdegree=1)

    def test_outdegrees_sum_to_edge_count(self, small_grid):
        orientation = degeneracy_orientation(small_grid)
        out = orientation_outdegrees(small_grid, orientation)
        assert sum(out.values()) == small_grid.number_of_edges()


class TestMinimumOutdegreeOrientation:
    def test_achieves_pseudoarboricity(self, small_forest_union):
        orientation, value = minimum_outdegree_orientation(small_forest_union)
        assert value == pseudoarboricity(small_forest_union)
        assert is_valid_orientation(small_forest_union, orientation, max_outdegree=value)

    def test_cycle_gets_outdegree_one(self):
        cycle = nx.cycle_graph(7)
        orientation, value = minimum_outdegree_orientation(cycle)
        assert value == 1
        assert is_valid_orientation(cycle, orientation, max_outdegree=1)

    def test_empty_graph(self):
        orientation, value = minimum_outdegree_orientation(nx.empty_graph(3))
        assert orientation == {} and value == 0

    def test_complete_graph(self):
        graph = nx.complete_graph(6)
        orientation, value = minimum_outdegree_orientation(graph)
        assert value == pseudoarboricity(graph)
        assert is_valid_orientation(graph, orientation, max_outdegree=value)


class TestBarenboimElkin:
    def test_respects_soft_bound(self, small_forest_union):
        alpha = arboricity(small_forest_union)
        orientation, phases = barenboim_elkin_orientation(small_forest_union, alpha, epsilon=0.5)
        bound = int((2 + 0.5) * alpha)
        assert is_valid_orientation(small_forest_union, orientation, max_outdegree=bound)
        assert phases >= 1

    def test_tree(self, small_tree):
        orientation, _ = barenboim_elkin_orientation(small_tree, 1, epsilon=0.5)
        assert is_valid_orientation(small_tree, orientation, max_outdegree=2)

    def test_rejects_nonpositive_epsilon(self, small_tree):
        with pytest.raises(ValueError):
            barenboim_elkin_orientation(small_tree, 1, epsilon=0.0)

    def test_underestimated_alpha_raises(self):
        # A clique cannot be peeled with threshold (2+eps)*1.
        with pytest.raises(ValueError):
            barenboim_elkin_orientation(nx.complete_graph(12), 1, epsilon=0.1)


class TestPartitions:
    def test_pseudoforest_partition_is_partition(self, small_forest_union):
        parts = pseudoforest_partition(small_forest_union)
        seen = set()
        for part in parts:
            assert is_pseudoforest(part)
            for u, v in part.edges():
                key = frozenset((u, v))
                assert key not in seen
                seen.add(key)
        assert len(seen) == small_forest_union.number_of_edges()

    def test_pseudoforest_partition_size_matches_orientation(self, small_grid):
        orientation, value = minimum_outdegree_orientation(small_grid)
        parts = pseudoforest_partition(small_grid, orientation)
        assert len(parts) == value

    def test_spanning_forest_partition(self, small_forest_union):
        forests = spanning_forest_partition(small_forest_union)
        assert is_forest_partition(small_forest_union, forests)

    def test_spanning_forest_partition_of_tree_is_single_forest(self, small_tree):
        forests = spanning_forest_partition(small_tree)
        assert len(forests) == 1

    def test_spanning_forest_count_at_least_arboricity(self, small_forest_union):
        forests = spanning_forest_partition(small_forest_union)
        assert len(forests) >= arboricity(small_forest_union)
