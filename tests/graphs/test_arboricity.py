"""Tests for arboricity, degeneracy, pseudoarboricity and density."""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.arboricity import (
    arboricity,
    arboricity_upper_bound,
    degeneracy,
    degeneracy_ordering,
    maximum_density,
    pseudoarboricity,
)
from repro.graphs.generators import forest_union_graph, grid_graph, random_tree


class TestDegeneracy:
    def test_empty_graph(self):
        assert degeneracy(nx.Graph()) == 0

    def test_isolated_nodes(self):
        graph = nx.empty_graph(5)
        assert degeneracy(graph) == 0

    def test_tree_degeneracy_is_one(self, small_tree):
        assert degeneracy(small_tree) == 1

    def test_cycle_degeneracy_is_two(self):
        assert degeneracy(nx.cycle_graph(10)) == 2

    def test_complete_graph(self):
        assert degeneracy(nx.complete_graph(6)) == 5

    def test_grid(self):
        assert degeneracy(grid_graph(4, 5)) == 2

    def test_ordering_covers_all_nodes(self, small_forest_union):
        ordering, value = degeneracy_ordering(small_forest_union)
        assert sorted(ordering) == sorted(small_forest_union.nodes())
        assert value >= 1

    def test_ordering_certifies_degeneracy(self, small_forest_union):
        """Orienting towards later-peeled nodes bounds out-degree by the degeneracy."""
        ordering, value = degeneracy_ordering(small_forest_union)
        position = {node: index for index, node in enumerate(ordering)}
        for node in small_forest_union.nodes():
            later = sum(
                1
                for neighbor in small_forest_union.neighbors(node)
                if position[neighbor] > position[node]
            )
            assert later <= value

    def test_directed_graph_rejected(self):
        with pytest.raises(TypeError):
            degeneracy(nx.DiGraph([(0, 1)]))

    def test_multigraph_rejected(self):
        with pytest.raises(TypeError):
            degeneracy(nx.MultiGraph([(0, 1), (0, 1)]))


class TestArboricity:
    def test_empty_graph(self):
        assert arboricity(nx.empty_graph(4)) == 0

    def test_single_edge(self):
        assert arboricity(nx.path_graph(2)) == 1

    def test_tree_is_one(self):
        assert arboricity(random_tree(25, seed=2)) == 1

    def test_cycle_is_two(self):
        # A cycle has m = n, so some subgraph (the cycle itself) has
        # m/(n-1) > 1; Nash-Williams gives arboricity 2.
        assert arboricity(nx.cycle_graph(8)) == 2

    def test_complete_graphs(self):
        # K_n has arboricity ceil(n/2).
        assert arboricity(nx.complete_graph(4)) == 2
        assert arboricity(nx.complete_graph(5)) == 3
        assert arboricity(nx.complete_graph(6)) == 3

    def test_petersen(self):
        # Petersen graph: 15 edges, 10 nodes -> ceil(15/9) = 2 and it is
        # achievable (known arboricity 2).
        assert arboricity(nx.petersen_graph()) == 2

    def test_complete_bipartite(self):
        # K_{3,3}: 9 edges, 6 nodes -> ceil(9/5) = 2.
        assert arboricity(nx.complete_bipartite_graph(3, 3)) == 2

    def test_grid_is_two(self):
        assert arboricity(grid_graph(4, 4)) == 2

    def test_upper_bound_dominates_exact(self, small_forest_union):
        assert arboricity(small_forest_union) <= arboricity_upper_bound(small_forest_union)

    def test_upper_bound_empty(self):
        assert arboricity_upper_bound(nx.empty_graph(3)) == 0

    def test_inexact_mode_returns_upper_bound(self, small_forest_union):
        assert arboricity(small_forest_union, exact=False) == arboricity_upper_bound(
            small_forest_union
        )

    def test_forest_union_respects_construction(self):
        for alpha in (2, 3, 4):
            graph = forest_union_graph(30, alpha=alpha, seed=alpha)
            assert arboricity(graph) <= alpha

    def test_nash_williams_lower_bound(self, small_forest_union):
        graph = small_forest_union
        n, m = graph.number_of_nodes(), graph.number_of_edges()
        assert arboricity(graph) >= math.ceil(m / (n - 1))


class TestPseudoarboricity:
    def test_cycle_is_one(self):
        # A cycle can be oriented as a directed cycle: out-degree 1 everywhere.
        assert pseudoarboricity(nx.cycle_graph(9)) == 1

    def test_tree_is_one(self):
        assert pseudoarboricity(random_tree(20, seed=3)) == 1

    def test_complete_graph(self):
        # K_5: max density 10/5 = 2.
        assert pseudoarboricity(nx.complete_graph(5)) == 2

    def test_empty(self):
        assert pseudoarboricity(nx.empty_graph(4)) == 0

    def test_sandwich_with_arboricity(self, small_forest_union):
        pseudo = pseudoarboricity(small_forest_union)
        arbo = arboricity(small_forest_union)
        assert pseudo <= arbo <= pseudo + 1

    def test_maximum_density_matches_pseudoarboricity(self, small_forest_union):
        assert maximum_density(small_forest_union) == pseudoarboricity(small_forest_union)


class TestHypothesisInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1), st.integers(min_value=6, max_value=14))
    def test_random_graph_sandwich(self, seed, n):
        """alpha is sandwiched between the density lower bound and the degeneracy."""
        graph = nx.gnp_random_graph(n, 0.35, seed=seed)
        if graph.number_of_edges() == 0:
            assert arboricity(graph) == 0
            return
        alpha = arboricity(graph)
        assert alpha <= degeneracy(graph)
        assert alpha >= math.ceil(graph.number_of_edges() / (graph.number_of_nodes() - 1))
        pseudo = pseudoarboricity(graph)
        assert pseudo <= alpha <= pseudo + 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_arboricity_monotone_under_subgraph(self, seed):
        """Removing edges can never increase the arboricity."""
        graph = nx.gnp_random_graph(10, 0.4, seed=seed)
        alpha_full = arboricity(graph)
        reduced = graph.copy()
        reduced.remove_edges_from(list(reduced.edges())[: reduced.number_of_edges() // 2])
        assert arboricity(reduced) <= alpha_full
