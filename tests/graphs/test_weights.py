"""Tests for node weight assignment schemes."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.generators import random_tree
from repro.graphs.weights import (
    assign_adversarial_weights,
    assign_degree_weights,
    assign_inverse_degree_weights,
    assign_random_weights,
    assign_uniform_weights,
    node_weight,
    total_weight,
)


@pytest.fixture
def tree():
    return random_tree(25, seed=1)


class TestBasics:
    def test_default_weight_is_one(self, tree):
        assert node_weight(tree, 0) == 1

    def test_total_weight_default(self, tree):
        assert total_weight(tree, tree.nodes()) == tree.number_of_nodes()

    def test_uniform_assignment(self, tree):
        weights = assign_uniform_weights(tree, weight=7)
        assert set(weights.values()) == {7}
        assert node_weight(tree, 3) == 7

    def test_weights_stored_as_attributes(self, tree):
        assign_uniform_weights(tree, weight=2)
        assert all(tree.nodes[node]["weight"] == 2 for node in tree.nodes())


class TestRandomWeights:
    def test_range_respected(self, tree):
        weights = assign_random_weights(tree, 5, 9, seed=3)
        assert all(5 <= value <= 9 for value in weights.values())

    def test_deterministic(self, tree):
        first = assign_random_weights(tree, 1, 100, seed=3)
        second = assign_random_weights(tree, 1, 100, seed=3)
        assert first == second

    def test_invalid_range(self, tree):
        with pytest.raises(ValueError):
            assign_random_weights(tree, 5, 2)
        with pytest.raises(ValueError):
            assign_random_weights(tree, 0, 2)

    def test_integer_weights(self, tree):
        weights = assign_random_weights(tree, 1, 10, seed=1)
        assert all(isinstance(value, int) for value in weights.values())


class TestStructuredWeights:
    def test_degree_weights(self, tree):
        weights = assign_degree_weights(tree, base=2)
        for node in tree.nodes():
            assert weights[node] == 2 + tree.degree(node)

    def test_inverse_degree_weights_positive(self, tree):
        weights = assign_inverse_degree_weights(tree, scale=10)
        assert all(value >= 1 for value in weights.values())

    def test_inverse_degree_hubs_cheaper(self):
        star = nx.star_graph(10)
        weights = assign_inverse_degree_weights(star, scale=100)
        assert weights[0] < weights[1]

    def test_adversarial_only_internal_nodes_expensive(self, tree):
        weights = assign_adversarial_weights(tree, expensive_fraction=1.0, expensive=50, seed=2)
        for node in tree.nodes():
            if tree.degree(node) <= 1:
                assert weights[node] == 1
            else:
                assert weights[node] == 50

    def test_adversarial_fraction_bounds(self, tree):
        with pytest.raises(ValueError):
            assign_adversarial_weights(tree, expensive_fraction=1.5)

    def test_total_weight_sums(self, tree):
        assign_uniform_weights(tree, weight=3)
        assert total_weight(tree, [0, 1, 2]) == 9
