"""Tests for the structural validators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.orientation import degeneracy_orientation, spanning_forest_partition
from repro.graphs.validation import (
    closed_neighborhood,
    dominating_set_weight,
    is_dominating_set,
    is_forest_partition,
    is_pseudoforest,
    is_valid_orientation,
    is_vertex_cover,
    undominated_nodes,
)
from repro.graphs.weights import assign_uniform_weights


class TestDomination:
    def test_closed_neighborhood(self):
        path = nx.path_graph(4)
        assert closed_neighborhood(path, 1) == {0, 1, 2}

    def test_star_center_dominates(self):
        star = nx.star_graph(6)
        assert is_dominating_set(star, {0})
        assert not is_dominating_set(star, {1})

    def test_path_alternating(self):
        path = nx.path_graph(5)
        assert is_dominating_set(path, {1, 3})
        assert not is_dominating_set(path, {1})

    def test_empty_candidate_on_nonempty_graph(self):
        assert not is_dominating_set(nx.path_graph(3), set())

    def test_empty_graph(self):
        assert is_dominating_set(nx.Graph(), set())

    def test_isolated_node_needs_itself(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        graph.add_edge(0, 1)
        graph.add_node(2)
        assert not is_dominating_set(graph, {0})
        assert is_dominating_set(graph, {0, 2})

    def test_undominated_nodes(self):
        path = nx.path_graph(6)
        assert undominated_nodes(path, {0}) == {2, 3, 4, 5}

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            undominated_nodes(nx.path_graph(3), {99})

    def test_dominating_set_weight(self):
        graph = nx.path_graph(4)
        assign_uniform_weights(graph, weight=5)
        assert dominating_set_weight(graph, {0, 2}) == 10

    def test_weight_ignores_duplicates(self):
        graph = nx.path_graph(3)
        assert dominating_set_weight(graph, [0, 0, 1]) == 2


class TestVertexCover:
    def test_path_cover(self):
        path = nx.path_graph(4)
        assert is_vertex_cover(path, {1, 2})
        assert not is_vertex_cover(path, {0, 3})

    def test_empty_graph_any_cover(self):
        assert is_vertex_cover(nx.empty_graph(3), set())

    def test_full_vertex_set_always_covers(self, small_grid):
        assert is_vertex_cover(small_grid, set(small_grid.nodes()))


class TestOrientationValidation:
    def test_valid_orientation(self, small_tree):
        orientation = degeneracy_orientation(small_tree)
        assert is_valid_orientation(small_tree, orientation)

    def test_missing_edge_detected(self, small_tree):
        orientation = degeneracy_orientation(small_tree)
        orientation.pop(next(iter(orientation)))
        assert not is_valid_orientation(small_tree, orientation)

    def test_foreign_tail_detected(self):
        graph = nx.path_graph(3)
        orientation = {edge: 99 for edge in graph.edges()}
        assert not is_valid_orientation(graph, orientation)

    def test_outdegree_bound_enforced(self):
        star = nx.star_graph(4)
        orientation = {edge: 0 for edge in star.edges()}
        assert is_valid_orientation(star, orientation, max_outdegree=4)
        assert not is_valid_orientation(star, orientation, max_outdegree=3)


class TestPseudoforestAndPartition:
    def test_tree_is_pseudoforest(self, small_tree):
        assert is_pseudoforest(small_tree)

    def test_single_cycle_is_pseudoforest(self):
        assert is_pseudoforest(nx.cycle_graph(5))

    def test_theta_graph_is_not_pseudoforest(self):
        graph = nx.cycle_graph(6)
        graph.add_edge(0, 3)
        assert not is_pseudoforest(graph)

    def test_forest_partition_accepts_valid(self, small_forest_union):
        forests = spanning_forest_partition(small_forest_union)
        assert is_forest_partition(small_forest_union, forests)

    def test_forest_partition_rejects_missing_edges(self, small_forest_union):
        forests = spanning_forest_partition(small_forest_union)
        forests[0].remove_edge(*next(iter(forests[0].edges())))
        assert not is_forest_partition(small_forest_union, forests)

    def test_forest_partition_rejects_cycles(self):
        cycle = nx.cycle_graph(4)
        assert not is_forest_partition(cycle, [cycle])
