"""Tests for the distributed baselines (LW-style and the combinatorial one)."""

from __future__ import annotations

import math

import pytest

from repro.baselines.exact import exact_minimum_dominating_set
from repro.baselines.lenzen_wattenhofer import LWDeterministicAlgorithm, LWRandomizedAlgorithm
from repro.baselines.msw import MSWStyleAlgorithm
from repro.congest.simulator import run_algorithm
from repro.graphs.generators import preferential_attachment_graph
from repro.graphs.validation import is_dominating_set


class TestLWDeterministic:
    def test_valid_on_suite(self, unweighted_instances):
        for instance in unweighted_instances:
            result = run_algorithm(instance.graph, LWDeterministicAlgorithm(), alpha=instance.alpha)
            assert is_dominating_set(instance.graph, result.selected_nodes()), instance.name

    def test_rounds_logarithmic_in_delta(self, small_ba):
        result = run_algorithm(small_ba, LWDeterministicAlgorithm(), alpha=3)
        max_degree = max(dict(small_ba.degree()).values())
        assert result.rounds <= 2 * (math.ceil(math.log2(max_degree + 2)) + 3)

    def test_deterministic(self, small_forest_union):
        first = run_algorithm(small_forest_union, LWDeterministicAlgorithm(), alpha=3, seed=1)
        second = run_algorithm(small_forest_union, LWDeterministicAlgorithm(), alpha=3, seed=9)
        assert first.selected_nodes() == second.selected_nodes()


class TestLWRandomized:
    def test_valid_on_suite(self, unweighted_instances):
        for instance in unweighted_instances:
            result = run_algorithm(
                instance.graph, LWRandomizedAlgorithm(), alpha=instance.alpha, seed=5
            )
            assert is_dominating_set(instance.graph, result.selected_nodes()), instance.name

    def test_rounds_logarithmic_in_n(self, small_forest_union):
        result = run_algorithm(small_forest_union, LWRandomizedAlgorithm(), alpha=3, seed=2)
        n = small_forest_union.number_of_nodes()
        assert result.rounds <= 4 * (math.ceil(math.log2(n)) + 4)

    def test_valid_across_seeds(self, small_forest_union):
        for seed in range(4):
            result = run_algorithm(small_forest_union, LWRandomizedAlgorithm(), alpha=3, seed=seed)
            assert is_dominating_set(small_forest_union, result.selected_nodes())


class TestCombinatorialBaseline:
    def test_valid_on_suite(self, unweighted_instances):
        for instance in unweighted_instances:
            result = run_algorithm(instance.graph, MSWStyleAlgorithm(), alpha=instance.alpha)
            assert is_dominating_set(instance.graph, result.selected_nodes()), instance.name

    def test_requires_alpha(self, small_forest_union):
        with pytest.raises(ValueError):
            run_algorithm(small_forest_union, MSWStyleAlgorithm(), alpha=None)

    def test_quality_on_skewed_degree_graph(self):
        """On a high-Delta, low-alpha graph the combinatorial baseline stays
        within a modest multiple of OPT (its selling point vs plain greedy-thresholds)."""
        graph = preferential_attachment_graph(150, attachment=3, seed=3)
        result = run_algorithm(graph, MSWStyleAlgorithm(), alpha=3)
        _, opt = exact_minimum_dominating_set(graph)
        assert len(result.selected_nodes()) <= (2 * 3 + 1) * opt + 0.35 * graph.number_of_nodes()

    def test_rounds_logarithmic_in_delta(self, small_ba):
        result = run_algorithm(small_ba, MSWStyleAlgorithm(), alpha=3)
        max_degree = max(dict(small_ba.degree()).values())
        assert result.rounds <= 2 * (math.ceil(math.log2(max_degree + 2)) + 3)
