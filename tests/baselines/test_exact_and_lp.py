"""Tests for the exact solvers and the LP relaxations."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import (
    _branch_and_bound,
    exact_minimum_dominating_set,
    exact_minimum_weight_dominating_set,
)
from repro.baselines.lp import (
    fractional_dominating_set_lp,
    fractional_vertex_cover_lp,
    lp_dominating_set_lower_bound,
)
from repro.graphs.generators import random_tree
from repro.graphs.validation import is_dominating_set
from repro.graphs.weights import assign_random_weights


class TestExactSolver:
    def test_star_graph_optimum_is_one(self):
        star = nx.star_graph(8)
        solution, weight = exact_minimum_dominating_set(star)
        assert weight == 1 and solution == {0}

    def test_path_graph_optimum(self):
        # A path on 3k nodes has domination number k.
        path = nx.path_graph(9)
        _, weight = exact_minimum_dominating_set(path)
        assert weight == 3

    def test_cycle_graph_optimum(self):
        _, weight = exact_minimum_dominating_set(nx.cycle_graph(9))
        assert weight == 3

    def test_empty_graph(self):
        solution, weight = exact_minimum_weight_dominating_set(nx.Graph())
        assert solution == set() and weight == 0

    def test_isolated_nodes_all_selected(self):
        _, weight = exact_minimum_dominating_set(nx.empty_graph(4))
        assert weight == 4

    def test_solution_is_dominating(self, small_forest_union):
        solution, _ = exact_minimum_dominating_set(small_forest_union)
        assert is_dominating_set(small_forest_union, solution)

    def test_weighted_optimum_respects_weights(self):
        graph = nx.star_graph(5)
        graph.nodes[0]["weight"] = 100
        for leaf in range(1, 6):
            graph.nodes[leaf]["weight"] = 1
        _, weight = exact_minimum_weight_dominating_set(graph)
        # Taking all five leaves (weight 5) beats the expensive hub (100).
        assert weight == 5

    def test_unweighted_solver_ignores_weights(self):
        graph = nx.star_graph(5)
        graph.nodes[0]["weight"] = 100
        _, weight = exact_minimum_dominating_set(graph)
        assert weight == 1

    def test_matches_branch_and_bound_on_small_instances(self):
        for seed in range(4):
            graph = nx.gnp_random_graph(9, 0.3, seed=seed)
            assign_random_weights(graph, 1, 9, seed=seed)
            _, milp_weight = exact_minimum_weight_dominating_set(graph)
            _, bnb_weight = _branch_and_bound(graph)
            assert milp_weight == bnb_weight

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=18), st.integers(min_value=0, max_value=10 ** 6))
    def test_optimum_on_trees_at_most_half_of_nodes(self, n, seed):
        # Ore's bound: any graph without isolated nodes has a dominating set
        # of size <= n/2, and corona-like trees attain it -- a previous
        # ceil(n/3)+1 bound here was falsifiable (e.g. n=18, seed=748816).
        graph = random_tree(n, seed=seed)
        solution, weight = exact_minimum_dominating_set(graph)
        assert is_dominating_set(graph, solution)
        assert weight <= max(1, n // 2)


class TestDominatingSetLP:
    def test_lower_bounds_exact_optimum(self, small_forest_union):
        lp = lp_dominating_set_lower_bound(small_forest_union)
        _, opt = exact_minimum_dominating_set(small_forest_union)
        assert lp <= opt + 1e-6

    def test_star_lp_value_is_one(self):
        solution, value = fractional_dominating_set_lp(nx.star_graph(6))
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_solution_is_feasible(self, small_grid):
        solution, _ = fractional_dominating_set_lp(small_grid)
        for node in small_grid.nodes():
            total = solution[node] + sum(solution[v] for v in small_grid.neighbors(node))
            assert total >= 1 - 1e-6

    def test_weighted_lp_respects_weights(self):
        graph = nx.star_graph(4)
        graph.nodes[0]["weight"] = 50
        for leaf in range(1, 5):
            graph.nodes[leaf]["weight"] = 1
        _, value = fractional_dominating_set_lp(graph)
        assert value <= 4 + 1e-6

    def test_empty_graph(self):
        solution, value = fractional_dominating_set_lp(nx.Graph())
        assert solution == {} and value == 0.0


class TestVertexCoverLP:
    def test_bipartite_integrality(self):
        # On bipartite graphs the LP optimum equals the integral optimum
        # (Koenig); for K_{3,3} that is 3.
        _, value = fractional_vertex_cover_lp(nx.complete_bipartite_graph(3, 3))
        assert value == pytest.approx(3.0, abs=1e-6)

    def test_odd_cycle_is_half_integral(self):
        _, value = fractional_vertex_cover_lp(nx.cycle_graph(5))
        assert value == pytest.approx(2.5, abs=1e-6)

    def test_solution_covers_edges(self, small_grid):
        solution, _ = fractional_vertex_cover_lp(small_grid)
        for u, v in small_grid.edges():
            assert solution[u] + solution[v] >= 1 - 1e-6

    def test_edgeless_graph(self):
        solution, value = fractional_vertex_cover_lp(nx.empty_graph(3))
        assert value == 0.0 and set(solution) == {0, 1, 2}
