"""Tests for the centralized baselines: greedy, Bansal--Umboh, KMW, Sun."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.baselines.bansal_umboh import bansal_umboh_dominating_set
from repro.baselines.exact import exact_minimum_weight_dominating_set
from repro.baselines.greedy import greedy_dominating_set
from repro.baselines.kmw import kmw_lp_rounding_dominating_set
from repro.baselines.sun import sun_reverse_delete_dominating_set
from repro.graphs.arboricity import arboricity
from repro.graphs.validation import is_dominating_set


class TestGreedy:
    def test_star(self):
        solution, weight = greedy_dominating_set(nx.star_graph(9))
        assert solution == {0} and weight == 1

    def test_valid_on_suite(self, unweighted_instances):
        for instance in unweighted_instances:
            solution, _ = greedy_dominating_set(instance.graph)
            assert is_dominating_set(instance.graph, solution), instance.name

    def test_weighted_graph(self, weighted_forest_union):
        solution, weight = greedy_dominating_set(weighted_forest_union)
        assert is_dominating_set(weighted_forest_union, solution)
        assert weight == sum(weighted_forest_union.nodes[v]["weight"] for v in solution)

    def test_logarithmic_guarantee(self, small_forest_union):
        solution, weight = greedy_dominating_set(small_forest_union)
        _, opt = exact_minimum_weight_dominating_set(small_forest_union)
        max_degree = max(dict(small_forest_union.degree()).values())
        assert weight <= (math.log(max_degree + 1) + 1) * opt + 1e-9

    def test_isolated_nodes_selected(self):
        graph = nx.empty_graph(3)
        solution, weight = greedy_dominating_set(graph)
        assert solution == {0, 1, 2}

    def test_prefers_cheap_cover(self):
        graph = nx.star_graph(6)
        graph.nodes[0]["weight"] = 1000
        for leaf in range(1, 7):
            graph.nodes[leaf]["weight"] = 1
        solution, weight = greedy_dominating_set(graph)
        assert weight <= 7


class TestBansalUmboh:
    def test_valid_and_within_factor(self, unweighted_instances):
        for instance in unweighted_instances:
            result = bansal_umboh_dominating_set(instance.graph, alpha=instance.alpha)
            assert is_dominating_set(instance.graph, result.dominating_set), instance.name
            assert result.weight <= (2 * instance.alpha + 1) * result.lp_value + 1e-6, instance.name

    def test_weighted_instance(self, weighted_forest_union):
        result = bansal_umboh_dominating_set(weighted_forest_union, alpha=3)
        assert is_dominating_set(weighted_forest_union, result.dominating_set)
        assert result.weight <= 7 * result.lp_value + 1e-6

    def test_lp_value_lower_bounds_opt(self, small_forest_union):
        result = bansal_umboh_dominating_set(small_forest_union, alpha=3)
        _, opt = exact_minimum_weight_dominating_set(small_forest_union)
        assert result.lp_value <= opt + 1e-6

    def test_invalid_alpha(self, small_tree):
        with pytest.raises(ValueError):
            bansal_umboh_dominating_set(small_tree, alpha=0)

    def test_nominal_rounds_grow_with_precision(self, small_tree):
        loose = bansal_umboh_dominating_set(small_tree, alpha=1, epsilon=0.5)
        tight = bansal_umboh_dominating_set(small_tree, alpha=1, epsilon=0.1)
        assert tight.nominal_rounds > loose.nominal_rounds


class TestKMWRounding:
    def test_valid_dominating_set(self, unweighted_instances):
        for instance in unweighted_instances:
            result = kmw_lp_rounding_dominating_set(instance.graph, seed=1)
            assert is_dominating_set(instance.graph, result.dominating_set), instance.name

    def test_expected_logarithmic_quality(self, small_forest_union):
        _, opt = exact_minimum_weight_dominating_set(small_forest_union)
        max_degree = max(dict(small_forest_union.degree()).values())
        weights = [
            kmw_lp_rounding_dominating_set(small_forest_union, seed=seed).weight
            for seed in range(5)
        ]
        average = sum(weights) / len(weights)
        assert average <= 3 * (math.log(max_degree + 2) + 1) * opt

    def test_deterministic_given_seed(self, small_forest_union):
        first = kmw_lp_rounding_dominating_set(small_forest_union, seed=3)
        second = kmw_lp_rounding_dominating_set(small_forest_union, seed=3)
        assert first.dominating_set == second.dominating_set


class TestSunReverseDelete:
    def test_valid_on_suite(self, weighted_instances):
        for instance in weighted_instances:
            result = sun_reverse_delete_dominating_set(instance.graph)
            assert is_dominating_set(instance.graph, result.dominating_set), instance.name

    def test_reverse_delete_never_increases_weight(self, weighted_forest_union):
        result = sun_reverse_delete_dominating_set(weighted_forest_union)
        assert len(result.dominating_set) <= result.before_reverse_delete
        assert result.removed_by_reverse_delete >= 0

    def test_quality_close_to_alpha_plus_one(self, small_forest_union):
        """Sun's factor is (alpha+1); allow slack for our uniform dual ascent."""
        result = sun_reverse_delete_dominating_set(small_forest_union)
        _, opt = exact_minimum_weight_dominating_set(small_forest_union)
        alpha = arboricity(small_forest_union)
        assert result.weight <= 2 * (alpha + 1) * opt

    def test_star_graph(self):
        star = nx.star_graph(7)
        result = sun_reverse_delete_dominating_set(star)
        assert is_dominating_set(star, result.dominating_set)
        assert result.weight <= 2

    def test_weighted_star_avoids_expensive_hub(self):
        star = nx.star_graph(5)
        star.nodes[0]["weight"] = 1000
        for leaf in range(1, 6):
            star.nodes[leaf]["weight"] = 1
        result = sun_reverse_delete_dominating_set(star)
        assert result.weight <= 6
