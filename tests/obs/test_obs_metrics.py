"""Counters, gauges, fixed-bucket histograms, and the Prometheus exposition.

The central property (held under hypothesis): the histogram's reported
quantile is the smallest bucket bound ``>=`` the true sample quantile
computed with the same rank convention -- an upper bound, tight to one
bucket.  That is exactly what makes E17's "histogram p99 agrees with
loadgen p99 within one bucket" gate sound.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

BOUNDS = (1.0, 2.0, 5.0, 10.0)


def true_quantile(samples, q):
    """The sample quantile under the histogram's own rank convention."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestInstruments:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2.0

    def test_histogram_buckets_and_overflow(self):
        histogram = Histogram(BOUNDS)
        for value in (0.5, 1.0, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.bucket_counts == [2, 0, 1, 0, 1]
        assert histogram.cumulative() == [2, 2, 3, 3]
        assert histogram.sum == pytest.approx(104.5)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_quantile_edges(self):
        histogram = Histogram(BOUNDS)
        assert histogram.quantile(0.5) == 0.0  # empty
        histogram.observe(100.0)
        assert histogram.quantile(0.5) == math.inf  # overflow bucket
        assert histogram.quantile_bucket(0.5) == len(BOUNDS)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)


class TestQuantileUpperBoundProperty:
    @settings(max_examples=200, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False), min_size=1
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_reported_quantile_bounds_the_true_quantile(self, samples, q):
        histogram = Histogram(BOUNDS)
        for value in samples:
            histogram.observe(value)
        reported = histogram.quantile(q)
        truth = true_quantile(samples, q)
        # Upper bound...
        assert reported >= truth
        # ...tight to one bucket: it is the *smallest* bound >= truth.
        finite_covers = [bound for bound in BOUNDS if bound >= truth]
        expected = finite_covers[0] if finite_covers else math.inf
        assert reported == expected


class TestRegistryAndExposition:
    def test_same_name_and_labels_return_the_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", outcome="hit")
        first.inc()
        second = registry.counter("requests_total", outcome="hit")
        assert second.value == 1.0
        other = registry.counter("requests_total", outcome="miss")
        assert other.value == 0.0

    def test_a_name_is_bound_to_one_type(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x")

    def test_render_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "Requests.", outcome="hit").inc(3)
        registry.gauge("resident", "Resident graphs.").set(2)
        text = registry.render()
        assert "# HELP reqs_total Requests.\n" in text
        assert "# TYPE reqs_total counter\n" in text
        assert 'reqs_total{outcome="hit"} 3\n' in text
        assert "# TYPE resident gauge\n" in text
        assert "resident 2\n" in text
        assert text.endswith("\n")

    def test_render_histogram_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "Latency.", buckets=BOUNDS)
        for value in (0.5, 3.0, 100.0):
            histogram.observe(value)
        lines = registry.render().splitlines()
        assert 'lat_seconds_bucket{le="1"} 1' in lines
        assert 'lat_seconds_bucket{le="2"} 1' in lines
        assert 'lat_seconds_bucket{le="5"} 2' in lines
        assert 'lat_seconds_bucket{le="10"} 2' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 3' in lines
        assert "lat_seconds_sum 103.5" in lines
        assert "lat_seconds_count 3" in lines

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", label='say "hi"\n').inc()
        assert 'c{label="say \\"hi\\"\\n"} 1' in registry.render()

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_SECONDS_BUCKETS) == sorted(set(DEFAULT_SECONDS_BUCKETS))
        Histogram()  # defaults construct cleanly

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""
