"""The tracing layer: byte parity with tracing on, span-tree identity,
hooks delegation, and the JSONL schema validator.

The load-bearing contract: attaching a tracer never changes what a run
computes.  ``result_bytes`` covers the full result -- per-node outputs,
weights, validation flags, and the complete ``RunMetrics`` trace -- so
"traced == plain" here means byte-identical executions, across all three
engines, with and without a fault plan.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import RunSpec, Session
from repro.faults import fault_model
from repro.graphs import large_scale
from repro.graphs.generators import forest_union_graph
from repro.obs.trace import (
    FileTracer,
    NullTracer,
    RoundTimer,
    TracingHooks,
    load_trace,
    span_tree,
    validate_trace,
)
from repro.run.result import result_bytes

ENGINES = ("reference", "batched", "kernel")

#: Fields that legitimately differ between engines (or between runs) in a
#: trace: the executing engine and everything wall-clock.
_ENGINE_FIELDS = ("run_id", "engine_used", "wall_s", "ru_maxrss_kb")


def _graph():
    return forest_union_graph(60, alpha=3, seed=9)


def _crash5():
    return dataclasses.replace(fault_model("crash5"), seed=5)


def _structural(entry):
    """A span tree with engine identity and timing stripped."""
    run = {k: v for k, v in entry["run"].items() if k not in _ENGINE_FIELDS}
    run["metrics"] = {
        k: v for k, v in entry["run"]["metrics"].items() if k != "engine_used"
    }
    phases = [
        {k: v for k, v in phase.items() if k not in ("run_id", "wall_s")}
        for phase in entry["phases"]
    ]
    rounds = [
        {k: v for k, v in record.items() if k not in ("run_id", "t_start_s")}
        for record in entry["rounds"]
    ]
    return run, phases, rounds


class TestTracedByteParity:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("faulted", [False, True], ids=["fault-free", "crash5"])
    def test_traced_run_is_byte_identical_to_plain(self, tmp_path, engine, faulted):
        spec = RunSpec(
            graph=_graph(),
            algorithm="deterministic",
            alpha=3,
            seed=11,
            engine=engine,
            faults=_crash5() if faulted else None,
        )
        plain = Session().run(spec)
        with FileTracer(tmp_path / "trace.jsonl") as tracer:
            traced = Session().run(spec, tracer=tracer)
        assert result_bytes(traced) == result_bytes(plain)

    def test_null_tracer_takes_the_untraced_path(self):
        spec = RunSpec(graph=_graph(), algorithm="deterministic", alpha=3, seed=3)
        plain = Session().run(spec)
        nulled = Session(tracer=NullTracer()).run(spec)
        assert result_bytes(nulled) == result_bytes(plain)

    def test_traced_csr_kernel_run_is_byte_identical(self, tmp_path):
        csr = large_scale.large_grid(8, 8)
        spec = RunSpec(graph=csr, algorithm="deterministic", alpha=2, engine="kernel")
        plain = Session().run(spec)
        with FileTracer(tmp_path / "csr.jsonl") as tracer:
            traced = Session().run(spec, tracer=tracer)
        assert result_bytes(traced) == result_bytes(plain)
        records = load_trace(tmp_path / "csr.jsonl")
        assert validate_trace(records) == []
        (entry,) = span_tree(records).values()
        # The unfaulted CSR fast path runs hook-free (its closed-form
        # kernels must not be distorted at 10^5-node scale), so rounds are
        # derived post-run and carry no live timestamps.
        assert all(record["t_start_s"] is None for record in entry["rounds"])

    def test_traced_faulted_csr_run_carries_live_round_times(self, tmp_path):
        csr = large_scale.large_grid(8, 8)
        spec = RunSpec(
            graph=csr,
            algorithm="deterministic",
            alpha=2,
            engine="kernel",
            faults=_crash5(),
        )
        plain = Session().run(spec)
        with FileTracer(tmp_path / "csr-faulted.jsonl") as tracer:
            traced = Session().run(spec, tracer=tracer)
        assert result_bytes(traced) == result_bytes(plain)
        (entry,) = span_tree(load_trace(tmp_path / "csr-faulted.jsonl")).values()
        assert all(record["t_start_s"] is not None for record in entry["rounds"])


class TestSpanTreeIdentity:
    @pytest.mark.parametrize("faulted", [False, True], ids=["fault-free", "crash5"])
    def test_identical_trees_across_engines(self, tmp_path, faulted):
        path = tmp_path / "grid.jsonl"
        for engine in ENGINES:
            spec = RunSpec(
                graph=_graph(),
                algorithm="deterministic",
                alpha=3,
                seed=11,
                engine=engine,
                faults=_crash5() if faulted else None,
            )
            with FileTracer(path) as tracer:
                Session().run(spec, tracer=tracer)
        records = load_trace(path)
        assert validate_trace(records) == []
        tree = span_tree(records)
        assert len(tree) == len(ENGINES)
        shapes = [_structural(entry) for entry in tree.values()]
        assert all(shape == shapes[0] for shape in shapes)

    def test_run_span_contents(self, tmp_path):
        path = tmp_path / "one.jsonl"
        spec = RunSpec(graph=_graph(), algorithm="deterministic", alpha=3, seed=2)
        with FileTracer(path) as tracer:
            result = Session().run(spec, tracer=tracer)
        (entry,) = span_tree(load_trace(path)).values()
        run = entry["run"]
        assert run["algorithm"] == "deterministic"
        assert run["n"] == 60
        assert run["seed"] == 2
        assert run["rounds"] == result.rounds
        assert run["metrics"]["total_messages"] == result.metrics.total_messages
        assert run["ru_maxrss_kb"] is None or run["ru_maxrss_kb"] > 0
        assert [phase["phase"] for phase in entry["phases"]] == [
            "compile",
            "execute",
            "package",
        ]
        assert len(entry["rounds"]) == result.rounds
        # Network engines run the hooked loop under a tracer: every round
        # carries a live start time, non-decreasing in round order.
        starts = [record["t_start_s"] for record in entry["rounds"]]
        assert all(start is not None for start in starts)
        assert starts == sorted(starts)


class TestTracingHooks:
    def test_begin_round_timestamps_then_delegates(self):
        calls = []

        class Hooks:
            stop_at_limit = True

            def begin_round(self, round_index):
                calls.append(round_index)
                return f"inner-{round_index}"

        timer = RoundTimer()
        proxy = TracingHooks(Hooks(), timer)
        assert proxy.begin_round(0) == "inner-0"
        assert proxy.begin_round(1) == "inner-1"
        assert calls == [0, 1]
        assert [index for index, _ in timer.starts] == [0, 1]
        # Everything else passes straight through.
        assert proxy.stop_at_limit is True

    def test_relative_starts_first_mark_wins(self):
        timer = RoundTimer()
        timer.starts = [(0, 10.0), (1, 11.0), (1, 12.0)]
        assert timer.relative_starts(9.0) == {0: 1.0, 1: 2.0}


class TestFileTracerAndValidator:
    def test_closed_tracer_refuses_to_emit(self, tmp_path):
        tracer = FileTracer(tmp_path / "t.jsonl")
        tracer.close()
        tracer.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            tracer.emit({"type": "event", "name": "x"})

    def test_run_ids_are_process_unique_across_tracers(self, tmp_path):
        first = FileTracer(tmp_path / "a.jsonl")
        second = FileTracer(tmp_path / "b.jsonl")
        ids = {first.next_run_id(), second.next_run_id(), first.next_run_id()}
        first.close()
        second.close()
        assert len(ids) == 3

    def test_validator_flags_duplicate_run_ids(self):
        run = {
            "type": "run",
            "trace_schema": 1,
            "run_id": 7,
            "algorithm": "a",
            "n": 1,
            "seed": 0,
            "rounds": 0,
            "wall_s": 0.0,
            "metrics": {},
        }
        problems = validate_trace([run, dict(run)])
        assert any("duplicate run_id" in problem for problem in problems)

    def test_validator_flags_orphans_and_round_count_drift(self):
        run = {
            "type": "run",
            "trace_schema": 1,
            "run_id": 0,
            "algorithm": "a",
            "n": 1,
            "seed": 0,
            "rounds": 2,
            "wall_s": 0.0,
            "metrics": {},
        }
        round_record = {
            "type": "round",
            "run_id": 0,
            "round_index": 0,
            "messages": 0,
            "bits": 0,
            "max_message_bits": 0,
            "active_nodes": 0,
            "dropped_messages": 0,
            "delayed_messages": 0,
            "crashed_nodes": 0,
        }
        orphan_phase = {"type": "phase", "run_id": 99, "phase": "execute", "wall_s": 0.0}
        problems = validate_trace([run, round_record, orphan_phase])
        assert any("unknown run_id" in problem for problem in problems)
        assert any("1 round records for a 2-round run" in problem for problem in problems)

    def test_module_cli_validates_a_real_trace(self, tmp_path, capsys):
        from repro.obs.trace import main

        path = tmp_path / "cli.jsonl"
        spec = RunSpec(graph=_graph(), algorithm="deterministic", alpha=3, seed=1)
        with FileTracer(path) as tracer:
            Session().run(spec, tracer=tracer)
        assert main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out
        path.write_text('{"type": "nope"}\n')
        assert main([str(path)]) == 1
