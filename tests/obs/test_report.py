"""The --plots artifact pipeline: headless rendering smoke + soft gating.

matplotlib is optional in this environment; the rendering tests skip
cleanly when it is absent, while the gating tests (which must work exactly
when the library is missing) always run.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentRecord
from repro.obs.report import matplotlib_available, render_plots


def _record(n, algorithm="algo-a", rounds=5, messages=100, ratio=1.5, faults=None):
    params = {"solver_label": algorithm}
    if faults is not None:
        params["faults"] = faults
    return ExperimentRecord(
        experiment="E",
        algorithm=algorithm,
        instance=f"g{n}",
        n=n,
        m=2 * n,
        max_degree=4,
        alpha=2,
        weight=float(n),
        rounds=rounds,
        ratio=ratio,
        opt_value=float(n) / 2,
        opt_kind="lp",
        guarantee=4.0,
        within_guarantee=True,
        is_dominating=True,
        params=params,
        messages=messages,
        total_bits=32 * messages,
    )


def _grid():
    records = []
    for n in (100, 200, 400):
        for algorithm in ("algo-a", "algo-b"):
            records.append(_record(n, algorithm=algorithm, rounds=n // 20, messages=3 * n))
            records.append(
                _record(n, algorithm=algorithm, ratio=2.5, faults="crash15")
            )
    return records


class TestGating:
    def test_render_without_matplotlib_raises_actionably(self, monkeypatch):
        import repro.obs.report as report_module

        monkeypatch.setattr(report_module, "_pyplot", lambda: None)
        with pytest.raises(RuntimeError, match="matplotlib"):
            render_plots([_record(100)], "unused")

    def test_cli_soft_fails_without_matplotlib(self, monkeypatch, capsys):
        import repro.obs.report as report_module
        from repro.orchestration.cli import _render_report_plots

        monkeypatch.setattr(report_module, "matplotlib_available", lambda: False)
        assert _render_report_plots([_record(100)], None) == 2
        assert "matplotlib" in capsys.readouterr().err


@pytest.mark.skipif(not matplotlib_available(), reason="matplotlib not installed")
class TestRendering:
    def test_renders_all_three_figures_headless(self, tmp_path):
        written = render_plots(_grid(), tmp_path / "plots")
        names = sorted(path.name for path in written)
        assert names == [
            "messages_vs_n.png",
            "quality_vs_faults.png",
            "rounds_vs_n.png",
        ]
        for path in written:
            assert path.is_file() and path.stat().st_size > 0

    def test_fault_frontier_needs_faulted_records(self, tmp_path):
        written = render_plots(
            [_record(100), _record(200)], tmp_path / "plots"
        )
        assert not any(path.name == "quality_vs_faults.png" for path in written)

    def test_all_zero_series_are_skipped(self, tmp_path):
        records = [_record(100, messages=0), _record(200, messages=0)]
        written = render_plots(records, tmp_path / "plots")
        assert not any(path.name == "messages_vs_n.png" for path in written)
