"""Zero-fault parity: an empty FaultPlan run is byte-identical to a plain run.

The hooked round loops the AdversarialEngine activates inside both engines
are *structurally* different from the plain loops (delivery goes through the
fault session's in-flight mailbox), so this equality is a real theorem about
the implementation, not a short-circuit: with an empty plan, both engines
must reproduce their plain executions bit for bit -- outputs, round counts,
the full pickled metrics trace.

The fast subset (every algorithm on two families) runs in tier-1; the full
7-algorithm x 8-family differential grid mirrors
``tests/congest/test_engine_parity.py`` and runs under ``pytest -m slow``
(wired into the nightly fault-model parity job).  The kernel tier is part
of the engine list: its faulted driver replays the hooked round loop as
array programs, and with an empty plan it must reproduce the plain kernel
execution bit for bit, exactly like the per-node engines.
"""

from __future__ import annotations

import pickle

import networkx as nx
import pytest

from repro.congest.simulator import run_algorithm
from repro.core.general_graphs import GeneralGraphMDSAlgorithm
from repro.core.randomized import RandomizedMDSAlgorithm
from repro.core.trees import ForestMDSAlgorithm
from repro.core.unknown_params import (
    UnknownArboricityMDSAlgorithm,
    UnknownDegreeMDSAlgorithm,
)
from repro.core.unweighted import UnweightedMDSAlgorithm
from repro.core.weighted import WeightedMDSAlgorithm
from repro.faults import AdversarialEngine, FaultPlan
from repro.graphs.generators import (
    caterpillar_graph,
    forest_union_graph,
    grid_graph,
    outerplanar_graph,
    planar_triangulation_graph,
    preferential_attachment_graph,
    random_tree,
)
from repro.graphs.weights import assign_random_weights

ENGINES = ("reference", "batched", "kernel")

#: The same 8 seeded families as the engine-parity differential grid.
FAMILIES = {
    "tree": (lambda size, seed: random_tree(size, seed=seed), 1),
    "grid": (lambda size, seed: grid_graph(5, max(2, size // 5)), 2),
    "forest-union": (lambda size, seed: forest_union_graph(size, alpha=3, seed=seed), 3),
    "ba": (lambda size, seed: preferential_attachment_graph(size, attachment=3, seed=seed), 3),
    "planar": (lambda size, seed: planar_triangulation_graph(size, seed=seed), 3),
    "outerplanar": (lambda size, seed: outerplanar_graph(size, seed=seed), 2),
    "caterpillar": (lambda size, seed: caterpillar_graph(max(2, size // 4), legs_per_node=3), 1),
    "gnp": (lambda size, seed: nx.gnp_random_graph(size, 0.15, seed=seed), None),
}

#: The 7 core algorithms, as in the engine-parity grid.
ALGORITHMS = {
    "unweighted": (lambda: UnweightedMDSAlgorithm(epsilon=0.2), False, {}),
    "weighted": (lambda: WeightedMDSAlgorithm(epsilon=0.2), True, {}),
    "randomized": (lambda: RandomizedMDSAlgorithm(t=2), False, {}),
    "general": (lambda: GeneralGraphMDSAlgorithm(k=2), False, {"use_alpha": False}),
    "forest": (lambda: ForestMDSAlgorithm(), False, {"use_alpha": False}),
    "unknown-delta": (
        lambda: UnknownDegreeMDSAlgorithm(epsilon=0.2),
        True,
        {"knows_max_degree": False},
    ),
    "unknown-alpha": (
        lambda: UnknownArboricityMDSAlgorithm(epsilon=0.25),
        True,
        {"use_alpha": False, "knows_max_degree": False},
    ),
}

#: Tier-1 keeps the grid light; the slow grid covers all 8 families.
FAST_FAMILIES = ("ba", "grid")


def _build_graph(family_key, size, seed, weighted):
    builder, alpha = FAMILIES[family_key]
    graph = builder(size, seed)
    if weighted:
        assign_random_weights(graph, 1, 25, seed=seed + 1)
    if alpha is None:
        from repro.graphs.arboricity import arboricity_upper_bound

        alpha = max(1, arboricity_upper_bound(graph))
    return graph, alpha


def _assert_empty_plan_parity(family_key, algorithm_key, size, seed):
    factory, weighted, options = ALGORITHMS[algorithm_key]
    graph, alpha = _build_graph(family_key, size, seed, weighted)
    kwargs = dict(seed=seed)
    if options.get("use_alpha", True):
        kwargs["alpha"] = alpha
    if not options.get("knows_max_degree", True):
        kwargs["knows_max_degree"] = False
    for inner in ENGINES:
        plain = run_algorithm(graph, factory(), engine=inner, **kwargs)
        hooked = run_algorithm(
            graph,
            factory(),
            engine=AdversarialEngine(FaultPlan(), inner=inner),
            **kwargs,
        )
        label = f"{algorithm_key}/{family_key}/{inner}"
        assert hooked.outputs == plain.outputs, label
        assert pickle.dumps(hooked.metrics) == pickle.dumps(plain.metrics), label


@pytest.mark.parametrize("algorithm_key", sorted(ALGORITHMS))
@pytest.mark.parametrize("family_key", FAST_FAMILIES)
def test_empty_plan_byte_identical_fast(family_key, algorithm_key):
    _assert_empty_plan_parity(family_key, algorithm_key, size=40, seed=13)


@pytest.mark.slow
@pytest.mark.parametrize("algorithm_key", sorted(ALGORITHMS))
@pytest.mark.parametrize("family_key", sorted(FAMILIES))
@pytest.mark.parametrize("size", [12, 60, 120])
@pytest.mark.parametrize("seed", [0, 1, 2022])
def test_empty_plan_byte_identical_exhaustive(family_key, algorithm_key, size, seed):
    _assert_empty_plan_parity(family_key, algorithm_key, size=size, seed=seed)


def test_empty_plan_parity_on_corner_graphs():
    """Empty, single-node, isolated-only and disconnected graphs."""
    corner_graphs = [
        nx.empty_graph(0),
        nx.empty_graph(1),
        nx.empty_graph(7),
        nx.path_graph(2),
        nx.disjoint_union(nx.path_graph(3), nx.empty_graph(2)),
        nx.star_graph(9),
    ]
    for index, graph in enumerate(corner_graphs):
        for inner in ENGINES:
            plain = run_algorithm(
                graph, UnweightedMDSAlgorithm(epsilon=0.2), alpha=1, seed=index, engine=inner
            )
            hooked = run_algorithm(
                graph,
                UnweightedMDSAlgorithm(epsilon=0.2),
                alpha=1,
                seed=index,
                engine=AdversarialEngine(FaultPlan(), inner=inner),
            )
            assert hooked.outputs == plain.outputs, f"corner-{index}/{inner}"
            assert pickle.dumps(hooked.metrics) == pickle.dumps(plain.metrics)
