"""Unit tests for the declarative fault layer: plans, specs, materialisation."""

from __future__ import annotations

import json
import pickle

import networkx as nx
import pytest

from repro.faults import (
    FAULT_MODELS,
    ChurnEvent,
    CrashFault,
    FaultPlan,
    FaultSpec,
    LinkFault,
    fault_model,
)


class TestCrashFault:
    def test_permanent_and_recovering(self):
        assert CrashFault("v", start=2).is_permanent
        assert not CrashFault("v", start=2, recover=5).is_permanent

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError, match="start must be >= 0"):
            CrashFault("v", start=-1)
        with pytest.raises(ValueError, match="must be after start"):
            CrashFault("v", start=3, recover=3)


class TestLinkFault:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="drop_probability"):
            LinkFault(0, 1, drop_probability=1.5)
        with pytest.raises(ValueError, match="latency bounds"):
            LinkFault(0, 1, latency_low=3, latency_high=1)


class TestChurnEvent:
    def test_rejects_bad_events(self):
        with pytest.raises(ValueError, match="churn round"):
            ChurnEvent(-1, "remove", 0, 1)
        with pytest.raises(ValueError, match="churn action"):
            ChurnEvent(0, "toggle", 0, 1)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert plan.faulty_nodes() == ()
        assert plan.describe() == "no faults"

    def test_non_empty_detection(self):
        assert not FaultPlan(crashes=(CrashFault(0, start=1),)).is_empty()
        assert not FaultPlan(drop_probability=0.1).is_empty()
        assert not FaultPlan(latency_high=2).is_empty()
        assert not FaultPlan(churn=(ChurnEvent(1, "remove", 0, 1),)).is_empty()
        assert not FaultPlan(links=(LinkFault(0, 1, drop_probability=0.5),)).is_empty()
        # A link override that changes nothing keeps the plan empty.
        assert FaultPlan(links=(LinkFault(0, 1),)).is_empty()

    def test_faulty_nodes_sorted_and_unique(self):
        plan = FaultPlan(
            crashes=(
                CrashFault(3, start=1, recover=2),
                CrashFault(1, start=0),
                CrashFault(3, start=5, recover=7),
            )
        )
        assert plan.faulty_nodes() == (1, 3)

    def test_rejects_overlapping_crash_windows(self):
        with pytest.raises(ValueError, match="overlapping crash windows"):
            FaultPlan(crashes=(CrashFault(0, start=1, recover=5), CrashFault(0, start=3)))
        with pytest.raises(ValueError, match="overlapping crash windows"):
            FaultPlan(crashes=(CrashFault(0, start=1), CrashFault(0, start=9)))

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError, match="on_round_limit"):
            FaultPlan(on_round_limit="explode")

    def test_as_dict_is_json_ready(self):
        plan = FaultPlan(
            crashes=(CrashFault(0, start=1, recover=4),),
            drop_probability=0.25,
            latency_high=2,
            links=(LinkFault(0, 1, drop_probability=0.5),),
            churn=(ChurnEvent(2, "remove", 0, 1), ChurnEvent(4, "insert", 0, 1)),
            seed=7,
        )
        blob = json.dumps(plan.as_dict(), sort_keys=True)
        assert "drop_probability" in blob
        # Stable across repeated calls (content addressing relies on this).
        assert json.dumps(plan.as_dict(), sort_keys=True) == blob

    def test_plans_are_picklable(self):
        plan = FAULT_MODELS["chaos"].materialize(nx.path_graph(8), 3)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="crash_fraction"):
            FaultSpec(crash_fraction=2.0)
        with pytest.raises(ValueError, match="drop_probability"):
            FaultSpec(drop_probability=-0.1)
        with pytest.raises(ValueError, match="recover_after"):
            FaultSpec(crash_fraction=0.1, recover_after=0)
        with pytest.raises(ValueError, match="churn_period"):
            FaultSpec(churn_fraction=0.1)
        with pytest.raises(ValueError, match="on_round_limit"):
            FaultSpec(on_round_limit="panic")

    def test_display_label(self):
        assert FaultSpec().display_label == "no-faults"
        spec = FaultSpec(crash_fraction=0.2, drop_probability=0.1, latency_max=2)
        assert "crash[20%,stop]" in spec.display_label
        assert "drop[0.1]" in spec.display_label
        assert FaultSpec(label="custom").display_label == "custom"

    def test_as_dict_excludes_label(self):
        a = FaultSpec(drop_probability=0.1, label="a")
        b = FaultSpec(drop_probability=0.1, label="b")
        assert a.as_dict() == b.as_dict()

    def test_materialize_crash_counts(self):
        graph = nx.path_graph(40)
        plan = FaultSpec(crash_fraction=0.25, crash_at=3).materialize(graph, 0)
        assert len(plan.crashes) == 10
        assert all(crash.start == 3 and crash.is_permanent for crash in plan.crashes)

        plan = FaultSpec(crash_count=4, recover_after=2, crash_at=1).materialize(graph, 0)
        assert len(plan.crashes) == 4
        assert all(crash.recover == 3 for crash in plan.crashes)

    def test_materialize_churn_schedule(self):
        graph = nx.cycle_graph(20)  # 20 edges
        spec = FaultSpec(churn_fraction=0.1, churn_period=4, churn_epochs=3)
        plan = spec.materialize(graph, 0)
        # 2 edges per epoch, one remove + one matching insert each.
        assert len(plan.churn) == 3 * 2 * 2
        removes = [e for e in plan.churn if e.action == "remove"]
        inserts = [e for e in plan.churn if e.action == "insert"]
        assert {e.round_index for e in removes} == {4, 8, 12}
        assert {e.round_index for e in inserts} == {8, 12, 16}
        for remove in removes:
            assert any(
                insert.round_index == remove.round_index + 4
                and {insert.u, insert.v} == {remove.u, remove.v}
                for insert in inserts
            )

    def test_materialize_is_deterministic(self):
        graph = nx.gnp_random_graph(30, 0.2, seed=5)
        spec = FAULT_MODELS["chaos"]
        assert spec.materialize(graph, 9) == spec.materialize(graph, 9)

    def test_cell_seed_varies_unpinned_plans(self):
        graph = nx.gnp_random_graph(30, 0.2, seed=5)
        spec = FaultSpec(crash_fraction=0.3)
        assert spec.materialize(graph, 0) != spec.materialize(graph, 1)

    def test_pinned_seed_ignores_cell_seed(self):
        graph = nx.gnp_random_graph(30, 0.2, seed=5)
        spec = FaultSpec(crash_fraction=0.3, seed=77)
        assert spec.materialize(graph, 0) == spec.materialize(graph, 1)


class TestFaultModels:
    def test_catalogue_materializes_everywhere(self):
        graph = nx.gnp_random_graph(25, 0.25, seed=1)
        for name, spec in FAULT_MODELS.items():
            plan = spec.materialize(graph, 0)
            assert not plan.is_empty(), name

    def test_lookup(self):
        assert fault_model("lossy10").drop_probability == 0.10
        with pytest.raises(KeyError, match="unknown fault model"):
            fault_model("meteor-strike")
