"""Behavior of the AdversarialEngine: crashes, drops, latency, churn, metrics.

Every semantic claim of the fault model is pinned here on small, hand-built
networks, plus the cross-engine guarantee: a *non-empty* plan produces
byte-identical executions whether the per-delivery reference path or the
vectorized batched path applies it.  (The empty-plan guarantee lives in
``test_zero_fault_parity.py``.)
"""

from __future__ import annotations

import pickle

import networkx as nx
import pytest

from repro.congest.errors import BandwidthViolation, NonConvergenceError
from repro.congest.simulator import run_algorithm
from repro.core.randomized import RandomizedMDSAlgorithm
from repro.core.unweighted import UnweightedMDSAlgorithm
from repro.core.weighted import WeightedMDSAlgorithm
from repro.faults import (
    FAULT_MODELS,
    AdversarialEngine,
    ChurnEvent,
    CrashFault,
    FaultPlan,
    FaultSpec,
    LinkFault,
)
from repro.graphs.generators import (
    grid_graph,
    preferential_attachment_graph,
    random_geometric_graph,
)
from repro.graphs.weights import assign_random_weights

ENGINES = ("reference", "batched", "kernel")


def _run(graph, plan, inner, algorithm=None, seed=0, **kwargs):
    algorithm = algorithm or UnweightedMDSAlgorithm(epsilon=0.3)
    engine = AdversarialEngine(plan, inner=inner)
    return run_algorithm(graph, algorithm, seed=seed, engine=engine, **kwargs)


def _trace(result):
    """Everything observable about a faulted run, minus the engine name
    (``engine_used`` differs across engines by design)."""
    import dataclasses

    metrics = dataclasses.replace(result.metrics, engine_used=None)
    return pickle.dumps((result.outputs, metrics))


# --------------------------------------------------------------------------- #
# Crashes
# --------------------------------------------------------------------------- #


class TestCrashes:
    @pytest.mark.parametrize("inner", ENGINES)
    def test_crash_stop_terminates_and_is_recorded(self, inner):
        graph = preferential_attachment_graph(40, attachment=3, seed=2)
        victims = sorted(graph.nodes())[:6]
        plan = FaultPlan(crashes=tuple(CrashFault(v, start=1) for v in victims))
        result = _run(graph, plan, inner, alpha=3)
        assert result.metrics.faulty_nodes == tuple(sorted(victims, key=repr))
        # Crash-stop nodes do not keep the run alive; outputs exist for them.
        assert set(result.outputs) == set(graph.nodes())
        assert all(
            round_metrics.crashed_nodes == len(victims)
            for round_metrics in result.metrics.per_round[1:]
        )

    @pytest.mark.parametrize("inner", ENGINES)
    def test_crash_from_round_zero_sends_nothing(self, inner):
        graph = nx.star_graph(5)  # center 0 broadcasts to 5 leaves
        plan = FaultPlan(crashes=(CrashFault(0, start=0),))
        result = _run(graph, plan, inner, alpha=1)
        plain = run_algorithm(
            graph, UnweightedMDSAlgorithm(epsilon=0.3), alpha=1, engine=inner
        )
        assert result.metrics.total_messages < plain.metrics.total_messages

    @pytest.mark.parametrize("inner", ENGINES)
    def test_crash_recover_node_finishes_after_window(self, inner):
        graph = grid_graph(4, 4)
        victim = list(graph.nodes())[5]
        plan = FaultPlan(crashes=(CrashFault(victim, start=1, recover=4),))
        result = _run(graph, plan, inner, alpha=2)
        # The recovering node produced an output and the run converged
        # without hitting the limit.
        assert result.metrics.stalled_nodes == 0
        assert victim in result.outputs
        crashed_per_round = [r.crashed_nodes for r in result.metrics.per_round]
        assert crashed_per_round[1:4] == [1, 1, 1]
        assert all(c == 0 for c in crashed_per_round[4:])

    @pytest.mark.parametrize("inner", ENGINES)
    def test_messages_to_crashed_receiver_are_dropped(self, inner):
        graph = nx.path_graph(3)
        plan = FaultPlan(crashes=(CrashFault(1, start=0),))
        result = _run(graph, plan, inner, alpha=1)
        assert result.metrics.total_dropped_messages > 0

    @pytest.mark.parametrize("inner", ENGINES)
    def test_back_to_back_windows_apply_regardless_of_plan_order(self, inner):
        # Window 2 starts exactly where window 1 recovers; listed out of
        # order, the round-5 down toggle must still win over the recovery
        # (regression: toggles used to apply in plan-tuple order).
        graph = grid_graph(4, 4)
        victim = list(graph.nodes())[3]
        plan = FaultPlan(
            crashes=(
                CrashFault(victim, start=5, recover=8),
                CrashFault(victim, start=2, recover=5),
            )
        )
        result = _run(graph, plan, inner, alpha=2, max_rounds=40)
        crashed = [r.crashed_nodes for r in result.metrics.per_round]
        assert crashed[2:8] == [1, 1, 1, 1, 1, 1]
        assert all(count == 0 for count in crashed[8:])

    @pytest.mark.parametrize("inner", ENGINES)
    @pytest.mark.parametrize("variant", ["unknown-delta", "unknown-alpha"])
    def test_unknown_param_algorithms_degrade_when_crash_covers_setup(self, inner, variant):
        # A crash window over the setup rounds means tau/lambda are never
        # learned; both Remark 4.4/4.5 algorithms must fall back to local
        # knowledge (degraded output), not raise on None arithmetic.
        from repro.core.unknown_params import (
            UnknownArboricityMDSAlgorithm,
            UnknownDegreeMDSAlgorithm,
        )

        graph = preferential_attachment_graph(30, attachment=3, seed=8)
        victim = sorted(graph.nodes())[0]
        if variant == "unknown-delta":
            algorithm = UnknownDegreeMDSAlgorithm(epsilon=0.25)
            kwargs = {"alpha": 3}
            start = 1  # covers the round that learns tau and lambda
        else:
            algorithm = UnknownArboricityMDSAlgorithm(epsilon=0.25)
            kwargs = {}
            # Cover the *final* setup round, where lambda/alpha_hat are
            # derived -- the victim recovers directly into the iterations.
            n = graph.number_of_nodes()
            start = algorithm._block_count(n) * algorithm._peeling_phases_per_block(n) + 2
        plan = FaultPlan(crashes=(CrashFault(victim, start=start, recover=start + 3),))
        result = _run(
            graph, plan, inner, algorithm=algorithm, knows_max_degree=False, **kwargs
        )
        assert victim in result.outputs


# --------------------------------------------------------------------------- #
# Link omission
# --------------------------------------------------------------------------- #


class TestDrops:
    @pytest.mark.parametrize("inner", ENGINES)
    def test_full_omission_drops_everything(self, inner):
        graph = grid_graph(4, 5)
        plan = FaultPlan(drop_probability=1.0)
        result = _run(graph, plan, inner, alpha=2)
        assert result.metrics.total_messages == 0
        assert result.metrics.total_bits == 0
        assert result.metrics.total_dropped_messages > 0

    @pytest.mark.parametrize("inner", ENGINES)
    def test_partial_omission_reduces_traffic(self, inner):
        graph = preferential_attachment_graph(50, attachment=3, seed=4)
        plain = run_algorithm(
            graph, UnweightedMDSAlgorithm(epsilon=0.3), alpha=3, engine=inner
        )
        lossy = _run(graph, FaultPlan(drop_probability=0.3, seed=1), inner, alpha=3)
        assert 0 < lossy.metrics.total_dropped_messages
        assert lossy.metrics.per_round[0].messages < plain.metrics.per_round[0].messages

    @pytest.mark.parametrize("inner", ENGINES)
    def test_per_link_override(self, inner):
        graph = nx.path_graph(3)  # edges (0,1), (1,2)
        plan = FaultPlan(links=(LinkFault(0, 1, drop_probability=1.0),))
        result = _run(graph, plan, inner, alpha=1)
        # Every message on (0,1) in both directions dies; (1,2) is clean.
        per_round_zero = result.metrics.per_round[0]
        assert per_round_zero.dropped_messages == 2
        assert per_round_zero.messages == 2

    def test_link_fault_on_missing_edge_rejected(self):
        graph = nx.path_graph(3)
        plan = FaultPlan(links=(LinkFault(0, 2, drop_probability=1.0),))
        with pytest.raises(ValueError, match="not in the input graph"):
            _run(graph, plan, "reference", alpha=1)


# --------------------------------------------------------------------------- #
# Latency
# --------------------------------------------------------------------------- #


class TestLatency:
    @pytest.mark.parametrize("inner", ENGINES)
    def test_fixed_latency_delays_every_message(self, inner):
        graph = grid_graph(4, 4)
        plain = run_algorithm(
            graph, UnweightedMDSAlgorithm(epsilon=0.3), alpha=2, engine=inner
        )
        # Every message takes exactly one extra round; the algorithms run on
        # a fixed global-round schedule, so the run does not shrink -- the
        # phases are starved of their messages instead.
        slow = _run(graph, FaultPlan(latency_low=1, latency_high=1), inner, alpha=2)
        assert slow.metrics.rounds >= plain.metrics.rounds
        assert slow.metrics.total_delayed_messages == slow.metrics.total_messages
        assert slow.metrics.total_delayed_messages > 0

    @pytest.mark.parametrize("inner", ENGINES)
    def test_random_latency_counts_delayed_fraction(self, inner):
        graph = preferential_attachment_graph(40, attachment=3, seed=6)
        result = _run(graph, FaultPlan(latency_high=2, seed=3), inner, alpha=3)
        delayed = result.metrics.total_delayed_messages
        assert 0 < delayed < result.metrics.total_messages


# --------------------------------------------------------------------------- #
# Churn
# --------------------------------------------------------------------------- #


class TestChurn:
    @pytest.mark.parametrize("inner", ENGINES)
    def test_removed_edge_drops_messages_and_shrinks_topology(self, inner):
        graph = grid_graph(3, 4)
        edge = next(iter(graph.edges()))
        plan = FaultPlan(churn=(ChurnEvent(0, "remove", *edge),))
        result = _run(graph, plan, inner, alpha=2)
        assert result.metrics.per_round[0].live_edges == graph.number_of_edges() - 1
        assert result.metrics.per_round[0].dropped_messages == 2

    @pytest.mark.parametrize("inner", ENGINES)
    def test_reinsert_restores_topology(self, inner):
        graph = grid_graph(3, 4)
        edge = next(iter(graph.edges()))
        plan = FaultPlan(
            churn=(ChurnEvent(0, "remove", *edge), ChurnEvent(2, "insert", *edge))
        )
        result = _run(graph, plan, inner, alpha=2)
        live = [r.live_edges for r in result.metrics.per_round]
        m = graph.number_of_edges()
        assert live[0] == live[1] == m - 1
        assert all(count == m for count in live[2:])

    def test_churn_on_missing_edge_rejected(self):
        graph = nx.path_graph(3)
        plan = FaultPlan(churn=(ChurnEvent(0, "remove", 0, 2),))
        with pytest.raises(ValueError, match="not in the input graph"):
            _run(graph, plan, "batched", alpha=1)


# --------------------------------------------------------------------------- #
# Metrics bookkeeping and policies
# --------------------------------------------------------------------------- #


class TestMetricsAndPolicies:
    @pytest.mark.parametrize("inner", ENGINES)
    def test_empty_plan_reports_no_fault_metrics(self, inner):
        graph = grid_graph(3, 3)
        result = _run(graph, FaultPlan(), inner, alpha=2)
        metrics = result.metrics
        assert metrics.total_dropped_messages == 0
        assert metrics.total_delayed_messages == 0
        assert metrics.faulty_nodes == ()
        assert all(r.live_edges is None for r in metrics.per_round)

    @pytest.mark.parametrize("inner", ENGINES)
    def test_non_empty_plan_reports_topology_size(self, inner):
        graph = grid_graph(3, 3)
        result = _run(graph, FaultPlan(drop_probability=0.01), inner, alpha=2)
        assert all(
            r.live_edges == graph.number_of_edges() for r in result.metrics.per_round
        )

    @pytest.mark.parametrize("inner", ENGINES)
    def test_stop_at_limit_truncates_instead_of_raising(self, inner):
        # A recover round far beyond the algorithm's schedule stalls the
        # crashed node past its finish round; the run must end at the limit
        # with the stall recorded, not crash the sweep.
        graph = nx.path_graph(6)
        plan = FaultPlan(crashes=(CrashFault(2, start=1, recover=10_000),))
        result = _run(graph, plan, inner, alpha=1, max_rounds=30)
        assert result.metrics.stalled_nodes >= 1

    @pytest.mark.parametrize("inner", ENGINES)
    def test_raise_policy_propagates_with_pending_nodes(self, inner):
        graph = nx.path_graph(6)
        plan = FaultPlan(
            crashes=(CrashFault(2, start=1, recover=10_000),), on_round_limit="raise"
        )
        with pytest.raises(NonConvergenceError) as info:
            _run(graph, plan, inner, alpha=1, max_rounds=30)
        assert info.value.pending_nodes == (2,)
        assert "2" in str(info.value)

    def test_summary_mentions_faults(self):
        graph = grid_graph(3, 3)
        result = _run(graph, FaultPlan(drop_probability=0.5, seed=2), "batched", alpha=2)
        summary = result.metrics.summary()
        assert "dropped=" in summary and "delayed=" in summary

    def test_nesting_is_rejected(self):
        with pytest.raises(ValueError, match="cannot wrap"):
            AdversarialEngine(FaultPlan(), inner=AdversarialEngine())

    def test_bandwidth_violation_carries_edge_and_round(self):
        from repro.congest.algorithm import SynchronousAlgorithm
        from repro.congest.message import Broadcast

        class Oversized(SynchronousAlgorithm):
            name = "oversized"

            def round(self, node, round_index, inbox):
                if round_index == 0:
                    return Broadcast({"blob": "x" * 400})
                node.finish()
                return None

        graph = nx.path_graph(4)
        for engine in (
            "reference",
            "batched",
            AdversarialEngine(FaultPlan(drop_probability=0.5), inner="batched"),
        ):
            with pytest.raises(BandwidthViolation) as info:
                run_algorithm(graph, Oversized(), engine=engine)
            violation = info.value
            assert violation.edge == (violation.sender, violation.receiver)
            assert violation.round_index == 0
            # The offending link and round are in the message for log greps.
            assert repr(violation.sender) in str(violation)
            assert repr(violation.receiver) in str(violation)
            assert "round 0" in str(violation)


# --------------------------------------------------------------------------- #
# Cross-engine parity under real fault plans
# --------------------------------------------------------------------------- #


def _assert_cross_engine_parity(graph, plan, algorithm_factory, seed=0, **kwargs):
    traces = {
        inner: _trace(_run(graph, plan, inner, algorithm_factory(), seed=seed, **kwargs))
        for inner in ENGINES
    }
    for inner in ENGINES[1:]:
        assert traces[inner] == traces["reference"], inner


class TestCrossEngineFaultParity:
    def test_mixed_plan_parity(self):
        graph = preferential_attachment_graph(60, attachment=3, seed=9)
        assign_random_weights(graph, 1, 25, seed=10)
        plan = FaultSpec(
            crash_fraction=0.2,
            crash_at=2,
            recover_after=3,
            drop_probability=0.1,
            latency_max=2,
            churn_fraction=0.1,
            churn_period=3,
        ).materialize(graph, 0)
        _assert_cross_engine_parity(
            graph, plan, lambda: WeightedMDSAlgorithm(epsilon=0.2), alpha=3
        )

    def test_randomized_algorithm_parity(self):
        graph = random_geometric_graph(70, radius=0.2, seed=3)
        plan = FAULT_MODELS["chaos"].materialize(graph, 5)
        _assert_cross_engine_parity(
            graph, plan, lambda: RandomizedMDSAlgorithm(t=2), seed=11, alpha=6
        )

    def test_repeated_runs_are_byte_identical(self):
        graph = preferential_attachment_graph(50, attachment=3, seed=1)
        plan = FAULT_MODELS["lossy25"].materialize(graph, 2)
        first = _trace(_run(graph, plan, "batched", RandomizedMDSAlgorithm(t=2), seed=4, alpha=3))
        second = _trace(_run(graph, plan, "batched", RandomizedMDSAlgorithm(t=2), seed=4, alpha=3))
        assert first == second

    @pytest.mark.slow
    @pytest.mark.parametrize("model", sorted(FAULT_MODELS))
    @pytest.mark.parametrize("family", ["ba", "grid", "rgg"])
    @pytest.mark.parametrize("cell_seed", [0, 2022])
    def test_fault_model_parity_grid(self, model, family, cell_seed):
        """The nightly fault-model parity grid: every catalogue regime on
        every fault-scenario family, both engines, byte-compared."""
        builders = {
            "ba": lambda: preferential_attachment_graph(90, attachment=3, seed=cell_seed),
            "grid": lambda: grid_graph(9, 10),
            "rgg": lambda: random_geometric_graph(90, radius=0.16, seed=cell_seed),
        }
        graph = builders[family]()
        plan = FAULT_MODELS[model].materialize(graph, cell_seed)
        _assert_cross_engine_parity(
            graph,
            plan,
            lambda: UnweightedMDSAlgorithm(epsilon=0.25),
            seed=cell_seed,
            alpha=max(1, min(8, max(dict(graph.degree()).values(), default=1))),
        )
