"""The CI parity smoke must pass (it is what the pipeline runs)."""

from __future__ import annotations

from repro.run import smoke


def test_api_smoke_passes(capsys):
    assert smoke.main() == 0
    out = capsys.readouterr().out
    assert "engine=reference" in out and "engine=batched" in out
    assert "MISMATCH" not in out
