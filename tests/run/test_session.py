"""Session semantics: compile-once reuse, batches, faults, validation policy.

The load-bearing property throughout is *byte parity*: a run through a
compiled, reused session must be indistinguishable from a fresh one-shot
execution (which itself equals the legacy ``solve_*`` path; see
``test_parity_grid.py``).
"""

from __future__ import annotations

import dataclasses
import pickle

import networkx as nx
import pytest

from repro import FaultSpec, RunSpec, Session, execute
from repro.faults import AdversarialEngine, FAULT_MODELS
from repro.graphs.generators import forest_union_graph
from repro.graphs.weights import assign_random_weights
from repro.run.result import result_bytes


@pytest.fixture
def graph() -> nx.Graph:
    g = forest_union_graph(60, alpha=3, seed=9)
    assign_random_weights(g, 1, 20, seed=2)
    return g


def _spec(graph, **overrides) -> RunSpec:
    base = dict(graph=graph, algorithm="weighted", params={"epsilon": 0.2}, alpha=3)
    base.update(overrides)
    return RunSpec(**base)


class TestCompiledReuse:
    def test_graph_compiled_once_per_session(self, graph):
        session = Session()
        first = session.compile(_spec(graph))
        second = session.compile(_spec(graph, algorithm="randomized", params={}, seed=5))
        assert first is second
        assert session.compiled_count == 1

    def test_repeated_runs_byte_identical_to_fresh_executes(self, graph):
        session = Session()
        for engine in ("reference", "batched"):
            for seed in (0, 3):
                spec = _spec(graph, seed=seed, engine=engine)
                assert result_bytes(session.run(spec)) == result_bytes(execute(spec))

    def test_alternating_algorithms_rebind_network_cleanly(self, graph):
        """Config/knowledge churn (weighted -> unknown-degree -> weighted)
        through one compiled network matches fresh executions."""
        session = Session()
        specs = [
            _spec(graph, seed=1),
            _spec(graph, algorithm="unknown-degree", seed=1),
            _spec(graph, seed=1),  # back again: rebind must fully restore
            _spec(graph, algorithm="randomized", params={"t": 2}, seed=4),
        ]
        for spec in specs:
            assert result_bytes(session.run(spec)) == result_bytes(execute(spec))

    def test_invalidate_recompiles(self, graph):
        session = Session()
        compiled = session.compile(_spec(graph))
        session.invalidate(graph)
        assert session.compile(_spec(graph)) is not compiled
        session.invalidate()
        assert session.compiled_count == 0

    def test_context_manager_drops_compiled_state(self, graph):
        with Session() as session:
            session.run(_spec(graph))
            assert session.compiled_count == 1
        assert session.compiled_count == 0

    def test_session_default_engine_used_when_spec_leaves_none(self, graph):
        fast = Session(engine="batched")
        slow = Session(engine="reference")
        spec = _spec(graph, seed=2)
        assert result_bytes(fast.run(spec)) == result_bytes(slow.run(spec))

    def test_unknown_session_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Session(engine="warp-drive")

    def test_compiled_entry_pins_graph_and_weights_identity(self, graph):
        """The cache is keyed by id(graph)/id(weights); the compiled entry
        must hold strong references to both, or a freed object's recycled id
        would silently serve a stale compilation (a real CPython failure
        mode for back-to-back dicts of the same size)."""
        session = Session()
        weights = {node: 3 for node in graph.nodes()}
        spec = _spec(graph, weights=weights)
        compiled = session.compile(spec)
        assert compiled.source is graph
        assert compiled.weights_source is weights

    def test_distinct_weight_dicts_compile_separately(self, graph):
        session = Session()
        heavy = {node: 9 for node in graph.nodes()}
        light = {node: 1 for node in graph.nodes()}
        first = session.run(_spec(graph, weights=heavy, params={}, alpha=None))
        second = session.run(_spec(graph, weights=light, params={}, alpha=None))
        assert session.compiled_count == 2
        assert first.weight == 9 * len(first.dominating_set)
        assert second.weight == 1 * len(second.dominating_set)


class TestRunMany:
    def test_seed_batch_matches_per_seed_executes(self, graph):
        session = Session()
        base = _spec(graph, algorithm="randomized", params={"t": 1})
        batch = list(session.run_many(base=base, seeds=range(5)))
        loop = [execute(dataclasses.replace(base, seed=s)) for s in range(5)]
        assert [result_bytes(r) for r in batch] == [result_bytes(r) for r in loop]

    def test_streaming_iterator_is_lazy(self, graph):
        session = Session()
        stream = session.run_many(base=_spec(graph), seeds=range(3))
        assert iter(stream) is stream  # a generator, not a list
        first = next(stream)
        assert first.is_valid

    def test_explicit_spec_list(self, graph):
        session = Session()
        specs = [_spec(graph, seed=1), _spec(graph, algorithm="forest", params={}, seed=1)]
        results = list(session.run_many(specs))
        assert [r.algorithm for r in results] == [
            execute(specs[0]).algorithm, execute(specs[1]).algorithm
        ]

    def test_pooled_batch_byte_identical_to_serial(self, graph):
        session = Session()
        base = _spec(graph, algorithm="randomized", params={"t": 1}, engine="batched")
        serial = list(session.run_many(base=base, seeds=range(4)))
        pooled = list(session.run_many(base=base, seeds=range(4), workers=2))
        assert [result_bytes(r) for r in pooled] == [result_bytes(r) for r in serial]


class TestFaults:
    def test_spec_faults_match_manual_adversarial_engine(self, graph):
        regime = FaultSpec(drop_probability=0.1, latency_max=1)
        plan = regime.materialize(graph, 7)
        session = Session()
        for engine in ("reference", "batched"):
            via_spec = session.run(
                _spec(graph, faults=regime, fault_seed=7, seed=3, engine=engine)
            )
            legacy_engine = AdversarialEngine(plan, inner=engine)
            via_engine = execute(_spec(graph, seed=3, engine=legacy_engine))
            assert result_bytes(via_spec) == result_bytes(via_engine)

    def test_named_fault_model_resolves(self, graph):
        session = Session()
        named = session.run(_spec(graph, faults="lossy10", fault_seed=0, seed=1))
        plan = FAULT_MODELS["lossy10"].materialize(graph, 0)
        explicit = session.run(_spec(graph, faults=plan, seed=1))
        assert result_bytes(named) == result_bytes(explicit)

    def test_fault_seed_defaults_to_run_seed(self, graph):
        session = Session()
        regime = FAULT_MODELS["lossy10"]
        implicit = session.run(_spec(graph, faults=regime, seed=5))
        explicit = session.run(_spec(graph, faults=regime, fault_seed=5, seed=5))
        assert result_bytes(implicit) == result_bytes(explicit)

    def test_materialised_plans_are_memoized(self, graph):
        session = Session()
        compiled = session.compile(_spec(graph))
        spec = _spec(graph, faults=FAULT_MODELS["lossy10"], fault_seed=3)
        assert compiled.fault_plan(spec) is compiled.fault_plan(spec)


class TestValidationPolicyAndWeights:
    def test_skip_validation_sets_is_valid_none(self, graph):
        full = execute(_spec(graph, seed=1))
        skipped = execute(_spec(graph, seed=1, validate="skip"))
        assert full.is_valid is True
        assert skipped.is_valid is None
        assert skipped.dominating_set == full.dominating_set
        assert skipped.weight == full.weight
        assert pickle.dumps(skipped.metrics) == pickle.dumps(full.metrics)

    def test_weights_mapping_applied_to_a_copy(self):
        graph = nx.path_graph(8)
        weights = {node: 5 for node in graph.nodes()}
        result = execute(RunSpec(graph=graph, algorithm="weighted", weights=weights))
        assert result.weight == 5 * len(result.dominating_set)
        # The caller's graph is untouched.
        assert all("weight" not in graph.nodes[node] for node in graph.nodes())

    def test_weight_scheme_object_applied_with_graph_seed(self):
        from repro.orchestration.registry import WeightSpec

        graph = nx.path_graph(12)
        spec = RunSpec(
            graph=graph,
            algorithm="weighted",
            weights=WeightSpec(scheme="random", params={"low": 1, "high": 9}),
            graph_seed=4,
        )
        result = execute(spec)
        expected = graph.copy()
        WeightSpec(scheme="random", params={"low": 1, "high": 9}).apply(expected, 4)
        legacy = execute(RunSpec(graph=expected, algorithm="weighted"))
        assert result_bytes(result) == result_bytes(legacy)


class TestGraphSources:
    def test_graph_spec_source_builds_once(self):
        from repro.orchestration.registry import GraphSpec

        source = GraphSpec(family="random-tree", params={"n": 30})
        session = Session()
        spec = RunSpec(graph=source, algorithm="forest", graph_seed=3)
        first = session.run(spec)
        second = session.run(dataclasses.replace(spec, seed=1))
        assert session.compiled_count == 1
        built = source.build(3)
        fresh = execute(RunSpec(graph=built.graph, algorithm="forest"))
        assert result_bytes(first) == result_bytes(fresh)
        assert second.is_valid

    def test_graph_instance_source(self):
        from repro.orchestration.registry import GraphSpec

        instance = GraphSpec(family="random-tree", params={"n": 25}).build(0)
        result = execute(RunSpec(graph=instance, algorithm="forest"))
        assert result.is_valid
