"""Legacy ``solve_*`` vs ``RunSpec`` path: byte-identical, grid-enforced.

Three execution paths must agree bit for bit for every (solver, family)
cell: the legacy helper, the one-shot :func:`repro.execute`, and a *reused*
compiled :class:`repro.Session` (each session runs its spec twice and both
runs must match, proving network reuse -- rebind + reseed + shared layout --
is observationally invisible).

The default grid covers every one of the seven public solvers on four
seeded families under both engines; the full 7-solver x 8-family grid runs
under ``pytest -m slow``.
"""

from __future__ import annotations

import warnings

import networkx as nx
import pytest

import repro
from repro import RunSpec, Session, execute
from repro.graphs.generators import (
    caterpillar_graph,
    forest_union_graph,
    grid_graph,
    outerplanar_graph,
    planar_triangulation_graph,
    preferential_attachment_graph,
    random_tree,
)
from repro.graphs.weights import assign_random_weights
from repro.run.result import result_bytes

#: ``name -> (builder, alpha)``; the same eight families the engine-parity
#: grid uses (four fast, four more under ``-m slow``).
FAMILIES = {
    "tree": (lambda size, seed: random_tree(size, seed=seed), 1),
    "grid": (lambda size, seed: grid_graph(5, max(2, size // 5)), 2),
    "forest-union": (lambda size, seed: forest_union_graph(size, alpha=3, seed=seed), 3),
    "ba": (lambda size, seed: preferential_attachment_graph(size, attachment=3, seed=seed), 3),
}

SLOW_FAMILIES = {
    "planar": (lambda size, seed: planar_triangulation_graph(size, seed=seed), 3),
    "outerplanar": (lambda size, seed: outerplanar_graph(size, seed=seed), 2),
    "caterpillar": (lambda size, seed: caterpillar_graph(max(2, size // 4), legs_per_node=3), 1),
    "gnp": (lambda size, seed: nx.gnp_random_graph(size, 0.15, seed=seed), None),
}

#: The seven public solvers:
#: ``name -> (legacy helper call, RunSpec fields, weighted?, uses alpha?)``.
SOLVERS = {
    "deterministic": (
        lambda g, a, s, e: repro.solve_mds(g, alpha=a, epsilon=0.2, seed=s, engine=e),
        {"algorithm": "deterministic", "params": {"epsilon": 0.2}},
        True,
        True,
    ),
    "weighted": (
        lambda g, a, s, e: repro.solve_weighted_mds(g, alpha=a, epsilon=0.2, seed=s, engine=e),
        {"algorithm": "weighted", "params": {"epsilon": 0.2}},
        True,
        True,
    ),
    "randomized": (
        lambda g, a, s, e: repro.solve_mds_randomized(g, alpha=a, t=2, seed=s, engine=e),
        {"algorithm": "randomized", "params": {"t": 2}},
        False,
        True,
    ),
    "general": (
        lambda g, a, s, e: repro.solve_mds_general(g, k=2, seed=s, engine=e),
        {"algorithm": "general", "params": {"k": 2}},
        False,
        False,
    ),
    "forest": (
        lambda g, a, s, e: repro.solve_mds_forest(g, seed=s, engine=e),
        {"algorithm": "forest"},
        False,
        False,
    ),
    "unknown-degree": (
        lambda g, a, s, e: repro.solve_mds_unknown_degree(
            g, alpha=a, epsilon=0.2, seed=s, engine=e
        ),
        {"algorithm": "unknown-degree", "params": {"epsilon": 0.2}},
        True,
        True,
    ),
    "unknown-arboricity": (
        lambda g, a, s, e: repro.solve_mds_unknown_arboricity(g, epsilon=0.25, seed=s, engine=e),
        {"algorithm": "unknown-arboricity", "params": {"epsilon": 0.25}},
        True,
        False,
    ),
}


def _check_cell(solver_key, family, size, seed):
    legacy_call, spec_fields, weighted, uses_alpha = SOLVERS[solver_key]
    builder, alpha = family
    graph = builder(size, seed)
    if weighted:
        assign_random_weights(graph, 1, 25, seed=seed + 1)
    # alpha=None exercises the degeneracy-resolution path in both stacks.
    session = Session()
    for engine in ("reference", "batched"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = legacy_call(graph, alpha if uses_alpha else None, seed, engine)
        spec = RunSpec(
            graph=graph,
            alpha=alpha if uses_alpha else None,
            seed=seed,
            engine=engine,
            **spec_fields,
        )
        one_shot = execute(spec)
        first = session.run(spec)
        again = session.run(spec)  # reused network: must not drift

        label = f"{solver_key}/{engine}"
        assert result_bytes(one_shot) == result_bytes(legacy), label
        assert result_bytes(first) == result_bytes(legacy), label
        assert result_bytes(again) == result_bytes(legacy), label


@pytest.mark.parametrize("solver_key", sorted(SOLVERS))
@pytest.mark.parametrize("family_key", sorted(FAMILIES))
def test_runspec_path_matches_legacy(family_key, solver_key):
    _check_cell(solver_key, FAMILIES[family_key], size=40, seed=13)


@pytest.mark.slow
@pytest.mark.parametrize("solver_key", sorted(SOLVERS))
@pytest.mark.parametrize("family_key", sorted({**FAMILIES, **SLOW_FAMILIES}))
@pytest.mark.parametrize("seed", [1, 29])
def test_runspec_path_matches_legacy_full_grid(family_key, solver_key, seed):
    families = {**FAMILIES, **SLOW_FAMILIES}
    _check_cell(solver_key, families[family_key], size=52, seed=seed)
