"""RunSpec validation and the shared lookup error paths."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import RunSpec, Session, execute
from repro.core.api import SOLVERS, resolve_solver
from repro.run import (
    ALGORITHMS,
    available_algorithms,
    register_algorithm,
    resolve_algorithm,
)
from repro.run.algorithms import registry_lookup


@pytest.fixture
def graph() -> nx.Graph:
    return nx.path_graph(6)


class TestRunSpecValidation:
    def test_unknown_algorithm_lists_known_names(self, graph):
        with pytest.raises(KeyError) as excinfo:
            RunSpec(graph=graph, algorithm="definitely-not-an-algorithm")
        message = excinfo.value.args[0]
        assert "unknown algorithm 'definitely-not-an-algorithm'" in message
        for name in available_algorithms():
            assert name in message

    def test_unknown_fault_model_lists_known_names(self, graph):
        with pytest.raises(KeyError) as excinfo:
            RunSpec(graph=graph, faults="definitely-not-a-model")
        message = excinfo.value.args[0]
        assert "unknown fault model" in message
        assert "lossy10" in message and "chaos" in message

    def test_unknown_engine_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown engine"):
            RunSpec(graph=graph, engine="warp-drive")

    def test_algorithm_must_be_name_or_instance(self, graph):
        with pytest.raises(TypeError, match="registered name or a SynchronousAlgorithm"):
            RunSpec(graph=graph, algorithm=42)

    def test_invalid_validate_policy(self, graph):
        with pytest.raises(ValueError, match="validate must be one of"):
            RunSpec(graph=graph, validate="maybe")

    def test_alpha_below_one_rejected(self, graph):
        with pytest.raises(ValueError, match="alpha must be at least 1"):
            RunSpec(graph=graph, alpha=0)

    def test_budget_knobs_validated(self, graph):
        with pytest.raises(ValueError, match="max_rounds"):
            RunSpec(graph=graph, max_rounds=0)
        with pytest.raises(ValueError, match="bandwidth_words"):
            RunSpec(graph=graph, bandwidth_words=-1)

    def test_bad_graph_source_fails_at_run(self):
        spec = RunSpec(graph="not a graph")
        with pytest.raises(TypeError, match="RunSpec.graph must be"):
            execute(spec)

    def test_bad_weights_source_fails_at_run(self, graph):
        spec = RunSpec(graph=graph, weights=3.14)
        with pytest.raises(TypeError, match="RunSpec.weights must be"):
            execute(spec)

    def test_algorithm_label(self, graph):
        assert RunSpec(graph=graph, algorithm="randomized").algorithm_label == "randomized"
        from repro.core.trees import ForestMDSAlgorithm

        labeled = RunSpec(graph=graph, algorithm=ForestMDSAlgorithm())
        assert labeled.algorithm_label == ForestMDSAlgorithm.name


class TestAlgorithmRegistry:
    def test_all_legacy_solver_names_registered(self):
        assert set(SOLVERS) <= set(ALGORITHMS)

    def test_baseline_solvers_registered(self):
        for name in ("lw-deterministic", "lw-randomized", "msw-combinatorial",
                     "weighted-lambda-scaled"):
            assert name in ALGORITHMS

    def test_resolve_algorithm_unknown_name(self):
        with pytest.raises(KeyError, match="known algorithms:"):
            resolve_algorithm("nope")

    def test_register_algorithm_rejects_silent_redefinition(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("deterministic", lambda compiled, spec: None)

    def test_register_and_run_custom_recipe(self, graph):
        from repro.run.algorithms import ResolvedRun
        from repro.core.trees import ForestMDSAlgorithm

        def recipe(compiled, spec):
            del compiled
            return ResolvedRun(ForestMDSAlgorithm(), None, True, 99.0)

        register_algorithm("test-custom-forest", recipe, replace=True)
        try:
            result = execute(RunSpec(graph=nx.path_graph(5), algorithm="test-custom-forest"))
            assert result.guarantee == 99.0
        finally:
            del ALGORITHMS["test-custom-forest"]


class TestResolveSolverErrorPath:
    def test_resolve_solver_returns_helper(self):
        from repro import solve_mds

        assert resolve_solver("deterministic") is solve_mds

    def test_resolve_solver_unknown_name_lists_solvers(self):
        with pytest.raises(KeyError) as excinfo:
            resolve_solver("nope")
        message = excinfo.value.args[0]
        assert message.startswith("unknown solver 'nope'")
        for name in SOLVERS:
            assert name in message

    def test_registry_lookup_is_shared(self):
        # The RunSpec validation and resolve_solver raise through the same
        # helper, so the two error shapes stay in lockstep.
        with pytest.raises(KeyError, match="unknown thing 'x'; known things: a, b"):
            registry_lookup({"a": 1, "b": 2}, "x", "thing")


class TestRunManyArguments:
    def test_requires_specs_or_base_and_seeds(self, graph):
        session = Session()
        with pytest.raises(ValueError, match="either specs, or base= and seeds="):
            list(session.run_many())
        with pytest.raises(ValueError, match="not both"):
            spec = RunSpec(graph=graph, algorithm="forest")
            list(session.run_many([spec], base=spec, seeds=[1]))
