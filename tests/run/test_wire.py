"""The canonical RunSpec wire format: round-trips, rejection, equivalence."""

from __future__ import annotations

import json

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FAULT_MODELS, FaultSpec
from repro.graphs.large_scale import csr_from_networkx
from repro.orchestration.registry import GraphSpec, WeightSpec
from repro.run import RunSpec, Session, WireFormatError, result_bytes
from repro.run.wire import canonical_json, spec_wire_hash


def family_spec(**overrides) -> RunSpec:
    fields = {
        "graph": GraphSpec(family="random-tree", params={"n": 24}),
        "algorithm": "deterministic",
        "seed": 3,
    }
    fields.update(overrides)
    return RunSpec(**fields)


class TestRoundTrip:
    def test_family_form(self):
        spec = family_spec(params={"epsilon": 0.25}, alpha=2, graph_seed=5)
        wire = spec.to_dict()
        assert wire["graph"]["kind"] == "family"
        again = RunSpec.from_dict(wire)
        assert again.to_dict() == wire
        assert isinstance(again.graph, GraphSpec)
        assert again.graph.family == "random-tree"

    def test_edges_form_with_weights(self):
        graph = nx.cycle_graph(6)
        for node in graph.nodes():
            graph.nodes[node]["weight"] = node + 1
        spec = RunSpec(graph=graph, algorithm="weighted", seed=1)
        wire = spec.to_dict()
        assert wire["graph"]["kind"] == "edges"
        assert wire["graph"]["weights"] == [1, 2, 3, 4, 5, 6]
        again = RunSpec.from_dict(wire)
        assert again.to_dict() == wire
        assert sorted(again.graph.edges()) == sorted(graph.edges())

    def test_csr_form(self):
        graph = csr_from_networkx(nx.path_graph(5))
        wire = RunSpec(graph=graph).to_dict()
        assert wire["graph"]["kind"] == "csr"
        again = RunSpec.from_dict(wire)
        assert again.graph.n == 5
        assert again.to_dict() == wire

    def test_weight_mapping_form(self):
        spec = family_spec(weights={0: 3, 1: 7})
        wire = spec.to_dict()
        assert wire["weights"] == {"kind": "mapping", "entries": [[0, 3], [1, 7]]}
        assert RunSpec.from_dict(wire).to_dict() == wire

    def test_weight_scheme_form(self):
        spec = family_spec(weights=WeightSpec(scheme="random", params={"high": 9}))
        wire = spec.to_dict()
        assert wire["weights"]["kind"] == "scheme"
        again = RunSpec.from_dict(wire)
        assert isinstance(again.weights, WeightSpec)
        assert again.to_dict() == wire

    def test_fault_name_and_spec_forms(self):
        named = family_spec(faults="crash15")
        assert RunSpec.from_dict(named.to_dict()).faults == "crash15"
        spec = family_spec(faults=FaultSpec(drop_probability=0.1, label="drops"))
        wire = spec.to_dict()
        assert wire["faults"]["kind"] == "spec"
        again = RunSpec.from_dict(wire)
        assert isinstance(again.faults, FaultSpec)
        assert again.faults.drop_probability == 0.1
        assert again.faults.label == "drops"
        assert again.to_dict() == wire

    def test_json_round_trip_and_field_order(self):
        spec = family_spec()
        text = spec.to_json()
        again = RunSpec.from_json(text)
        assert again.to_dict() == spec.to_dict()
        # Declaration order is the wire order, schema marker first.
        assert list(spec.to_dict())[:4] == ["runspec", "graph", "algorithm", "params"]

    def test_wire_hash_is_canonical(self):
        wire = family_spec().to_dict()
        shuffled = dict(reversed(list(wire.items())))
        assert spec_wire_hash(wire) == spec_wire_hash(shuffled)
        assert canonical_json(wire) == canonical_json(shuffled)


class TestExecutionEquivalence:
    def test_decoded_spec_runs_byte_identical(self, small_tree):
        spec = RunSpec(graph=small_tree, algorithm="deterministic", seed=2)
        wire = json.loads(json.dumps(spec.to_dict()))
        direct = Session().run(spec)
        decoded = Session().run(RunSpec.from_dict(wire))
        assert result_bytes(direct) == result_bytes(decoded)

    def test_family_decoded_spec_runs_byte_identical(self):
        spec = family_spec(graph_seed=4)
        direct = Session().run(spec)
        decoded = Session().run(RunSpec.from_dict(spec.to_dict()))
        assert result_bytes(direct) == result_bytes(decoded)


class TestRejection:
    def test_unknown_top_level_key_lists_fields(self):
        wire = family_spec().to_dict()
        wire["sedd"] = 1
        with pytest.raises(WireFormatError) as caught:
            RunSpec.from_dict(wire)
        assert caught.value.field == "sedd"
        assert "known RunSpec fields" in str(caught.value)
        assert "seed" in str(caught.value)

    def test_unknown_graph_form_key_lists_keys(self):
        wire = family_spec().to_dict()
        wire["graph"]["famly"] = "x"
        with pytest.raises(WireFormatError) as caught:
            RunSpec.from_dict(wire)
        assert caught.value.field == "graph"
        assert "famly" in str(caught.value)

    def test_unknown_graph_kind_lists_kinds(self):
        with pytest.raises(WireFormatError) as caught:
            RunSpec.from_dict({"graph": {"kind": "blob"}})
        assert caught.value.field == "graph"
        assert "csr" in str(caught.value) and "family" in str(caught.value)

    def test_missing_graph(self):
        with pytest.raises(WireFormatError) as caught:
            RunSpec.from_dict({"algorithm": "deterministic"})
        assert caught.value.field == "graph"

    def test_non_object_payload(self):
        with pytest.raises(WireFormatError) as caught:
            RunSpec.from_dict([1, 2, 3])
        assert caught.value.field is None

    def test_bad_json_text(self):
        with pytest.raises(WireFormatError):
            RunSpec.from_json("{not json")

    @pytest.mark.parametrize(
        "payload, field",
        [
            ({"algorithm": "nope"}, "algorithm"),
            ({"faults": "martian-rays"}, "faults"),
            ({"engine": "warp-drive"}, "engine"),
            ({"validate": "maybe"}, "validate"),
            ({"seed": "zero"}, "seed"),
            ({"alpha": 0}, "alpha"),
            ({"max_rounds": 0}, "max_rounds"),
            ({"strict": "yes"}, "strict"),
        ],
    )
    def test_construction_errors_name_the_field(self, payload, field):
        wire = {"graph": {"kind": "edges", "nodes": [0, 1], "edges": [[0, 1]]}}
        wire.update(payload)
        with pytest.raises(WireFormatError) as caught:
            RunSpec.from_dict(wire)
        assert caught.value.field == field

    def test_csr_duplicate_edges_rejected(self):
        wire = {"graph": {"kind": "csr", "n": 2, "edges": [[0, 1], [0, 1]]}}
        with pytest.raises(WireFormatError) as caught:
            RunSpec.from_dict(wire)
        assert caught.value.field == "graph"

    def test_instance_algorithm_has_no_wire_form(self, small_tree):
        from repro.core.trees import ForestMDSAlgorithm

        spec = RunSpec(graph=small_tree, algorithm=ForestMDSAlgorithm())
        with pytest.raises(WireFormatError) as caught:
            spec.to_dict()
        assert caught.value.field == "algorithm"

    def test_fault_plan_has_no_wire_form(self, small_tree):
        plan = FaultSpec(crash_fraction=0.2).materialize(small_tree, cell_seed=0)
        spec = RunSpec(graph=small_tree, faults=plan)
        with pytest.raises(WireFormatError) as caught:
            spec.to_dict()
        assert caught.value.field == "faults"

    def test_non_wire_node_labels_rejected(self):
        graph = nx.Graph()
        graph.add_edge((0, 1), (2, 3))  # tuple labels cannot cross the wire
        with pytest.raises(WireFormatError) as caught:
            RunSpec(graph=graph).to_dict()
        assert caught.value.field == "graph"

    def test_wrong_wire_version(self):
        wire = family_spec().to_dict()
        wire["runspec"] = 99
        with pytest.raises(WireFormatError) as caught:
            RunSpec.from_dict(wire)
        assert caught.value.field == "runspec"


# -- hypothesis: to_dict(from_dict(wire)) == wire over generated specs ------

_families = st.sampled_from(["random-tree", "gnp", "bounded-arboricity"])


@st.composite
def wire_specs(draw) -> RunSpec:
    family = draw(_families)
    params = {"n": draw(st.integers(min_value=4, max_value=40))}
    if family == "gnp":
        params["p"] = 0.1
    if family == "bounded-arboricity":
        params["alpha"] = draw(st.integers(min_value=1, max_value=3))
    weights = draw(
        st.one_of(
            st.none(),
            st.just(WeightSpec(scheme="random", params={"high": 5})),
            st.dictionaries(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=1, max_value=9),
                max_size=4,
            ),
        )
    )
    faults = draw(st.one_of(st.none(), st.sampled_from(sorted(FAULT_MODELS))))
    return RunSpec(
        graph=GraphSpec(family=family, params=params),
        algorithm=draw(st.sampled_from(["deterministic", "randomized", "forest"])),
        params=draw(st.one_of(st.just({}), st.just({"epsilon": 0.5}))),
        alpha=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=4))),
        weights=weights,
        engine=draw(st.one_of(st.none(), st.sampled_from(["batched", "reference"]))),
        faults=faults,
        fault_seed=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=9))),
        seed=draw(st.integers(min_value=0, max_value=99)),
        graph_seed=draw(st.integers(min_value=0, max_value=99)),
        validate=draw(st.sampled_from(["full", "skip"])),
        strict=draw(st.booleans()),
        knows_max_degree=draw(st.one_of(st.none(), st.booleans())),
        guarantee=draw(st.one_of(st.none(), st.just(3.5))),
        config=draw(st.one_of(st.none(), st.just({"note": "x"}))),
    )


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(spec=wire_specs())
def test_wire_round_trip_property(spec: RunSpec):
    """to_dict -> JSON -> from_dict -> to_dict is the identity on wire dicts."""
    wire = spec.to_dict()
    rebuilt = RunSpec.from_dict(json.loads(json.dumps(wire)))
    assert rebuilt.to_dict() == wire
    assert spec_wire_hash(rebuilt.to_dict()) == spec_wire_hash(wire)
