"""Shared fixtures for the test-suite.

The fixtures provide small, deterministic graph instances that are reused
across many test modules, so individual tests stay fast while still covering
the graph families the paper targets (trees, planar, unions of forests,
preferential attachment).
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.generators import (
    GraphInstance,
    caterpillar_graph,
    forest_union_graph,
    grid_graph,
    outerplanar_graph,
    planar_triangulation_graph,
    preferential_attachment_graph,
    random_tree,
)
from repro.graphs.weights import assign_random_weights, assign_uniform_weights


@pytest.fixture
def small_tree() -> nx.Graph:
    """A 40-node random tree (arboricity 1)."""
    return random_tree(40, seed=7)


@pytest.fixture
def small_forest_union() -> nx.Graph:
    """A 50-node union of three random spanning trees (arboricity <= 3)."""
    return forest_union_graph(50, alpha=3, seed=11)


@pytest.fixture
def small_planar() -> nx.Graph:
    """A 45-node Delaunay triangulation (planar, arboricity <= 3)."""
    return planar_triangulation_graph(45, seed=3)


@pytest.fixture
def small_grid() -> nx.Graph:
    """A 5x7 grid (planar bipartite, arboricity <= 2)."""
    return grid_graph(5, 7)


@pytest.fixture
def small_outerplanar() -> nx.Graph:
    """A 30-node outerplanar graph (arboricity <= 2)."""
    return outerplanar_graph(30, seed=5)


@pytest.fixture
def small_caterpillar() -> nx.Graph:
    """A caterpillar tree with 10 spine nodes and 3 legs each."""
    return caterpillar_graph(10, legs_per_node=3)


@pytest.fixture
def small_ba() -> nx.Graph:
    """An 80-node preferential attachment graph (arboricity <= 3, skewed degrees)."""
    return preferential_attachment_graph(80, attachment=3, seed=9)


@pytest.fixture
def weighted_forest_union() -> nx.Graph:
    """The forest-union instance with random integer weights in [1, 30]."""
    graph = forest_union_graph(50, alpha=3, seed=11)
    assign_random_weights(graph, 1, 30, seed=13)
    return graph


@pytest.fixture
def unweighted_instances() -> list[GraphInstance]:
    """A small unweighted workload spanning the targeted graph families."""
    instances = [
        GraphInstance("tree", random_tree(35, seed=1), alpha=1),
        GraphInstance("grid", grid_graph(5, 6), alpha=2),
        GraphInstance("outerplanar", outerplanar_graph(28, seed=2), alpha=2),
        GraphInstance("forest-union-3", forest_union_graph(40, alpha=3, seed=3), alpha=3),
        GraphInstance("ba-3", preferential_attachment_graph(45, attachment=3, seed=4), alpha=3),
    ]
    for instance in instances:
        assign_uniform_weights(instance.graph)
    return instances


@pytest.fixture
def weighted_instances() -> list[GraphInstance]:
    """The same workload with random integer weights."""
    instances = [
        GraphInstance("tree-w", random_tree(35, seed=1), alpha=1),
        GraphInstance("forest-union-3-w", forest_union_graph(40, alpha=3, seed=3), alpha=3),
        GraphInstance("ba-3-w", preferential_attachment_graph(45, attachment=3, seed=4), alpha=3),
    ]
    for index, instance in enumerate(instances):
        assign_random_weights(instance.graph, 1, 25, seed=20 + index)
    return instances
