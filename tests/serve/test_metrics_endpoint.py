"""``GET /metrics`` exposition and the ``--log-json`` access log."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.serve.http import HttpServer
from repro.serve.loadgen import ServeClient
from repro.serve.service import RequestError, RunService


def tree_payload(seed: int = 0) -> dict:
    return {
        "graph": {"kind": "family", "family": "random-tree", "params": {"n": 30}},
        "algorithm": "deterministic",
        "seed": seed,
    }


def run_sync(service: RunService, payload: dict) -> dict:
    return asyncio.run(service.run(payload))


@pytest.fixture
def server(tmp_path):
    from repro.orchestration.cache import ResultCache

    service = RunService(cache=ResultCache(tmp_path / "cache"))
    instance = HttpServer(service, host="127.0.0.1", port=0)
    started = threading.Event()
    loop_holder = {}

    def run_loop():
        loop = asyncio.new_event_loop()
        loop_holder["loop"] = loop
        asyncio.set_event_loop(loop)

        async def main():
            await instance.start()
            started.set()
            await instance.serve_until_stopped()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    assert started.wait(timeout=30)
    yield instance
    loop_holder["loop"].call_soon_threadsafe(instance.stop)
    thread.join(timeout=30)


class TestMetricsExposition:
    def test_golden_exposition_shape(self, tmp_path):
        """The service-level golden: one executed run, one hit, one error."""
        from repro.orchestration.cache import ResultCache

        with RunService(cache=ResultCache(tmp_path / "cache")) as service:
            run_sync(service, tree_payload())
            run_sync(service, tree_payload())  # response-cache hit
            with pytest.raises(RequestError):
                run_sync(service, {"graph": {"kind": "family", "family": "nope"}})
            text = service.metrics_text()
        lines = text.splitlines()
        assert "# TYPE repro_serve_requests_total counter" in lines
        assert 'repro_serve_requests_total{outcome="executed"} 1' in lines
        assert 'repro_serve_requests_total{outcome="hit"} 1' in lines
        assert 'repro_serve_requests_total{outcome="error"} 1' in lines
        assert "# TYPE repro_serve_request_seconds histogram" in lines
        assert 'repro_serve_request_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_serve_request_seconds_count 3" in lines
        assert "repro_serve_graphs_resident 1" in lines
        assert "repro_serve_inflight 0" in lines
        assert "repro_serve_compiled_graphs 1" in lines
        assert 'repro_serve_result_cache{op="misses"} 1' in lines
        assert 'repro_serve_result_cache{op="hits"} 1' in lines
        assert 'repro_serve_result_cache{op="writes"} 1' in lines

    def test_metrics_route_serves_prometheus_text(self, server):
        client = ServeClient(port=server.port)
        client.run(tree_payload())
        status, text = client.get_text("/metrics")
        client.close()
        assert status == 200
        assert 'repro_serve_requests_total{outcome="executed"} 1' in text
        assert "repro_serve_request_seconds_bucket" in text

    def test_metrics_listed_in_404_routes(self, server):
        client = ServeClient(port=server.port)
        status, body = client.get("/nope")
        client.close()
        assert status == 404
        assert "GET /metrics" in body["error"]["message"]

    def test_histogram_quantile_tracks_observed_latency(self, tmp_path):
        """The /metrics histogram and direct timing agree within a bucket --
        the property E17 gates on, checked here at unit scale."""
        from repro.orchestration.cache import ResultCache

        with RunService(cache=ResultCache(tmp_path / "cache")) as service:
            for seed in range(5):
                run_sync(service, tree_payload(seed))
            histogram = service.metrics.histogram("repro_serve_request_seconds")
            assert histogram.count == 5
            mean = histogram.sum / histogram.count
            p99 = histogram.quantile(0.99)
            # The reported p99 upper-bounds every observation's bucket; the
            # mean of real observations can never exceed it.
            assert mean <= p99


class TestJsonAccessLog:
    def test_run_line_reuses_the_metrics_envelope(self, capsys):
        server = HttpServer.__new__(HttpServer)
        server.log_json = True
        payload = {
            "ok": True,
            "metrics": {"cache": "miss", "rounds": 4},
        }
        server._access_log("POST", "/run", 200, 0.0123, payload)
        line = json.loads(capsys.readouterr().out)
        assert line == {
            "log": "access",
            "method": "POST",
            "path": "/run",
            "status": 200,
            "wall_time_s": 0.0123,
            "metrics": {"cache": "miss", "rounds": 4},
        }

    def test_error_line_carries_the_error_kind(self, capsys):
        server = HttpServer.__new__(HttpServer)
        server.log_json = True
        server._access_log(
            "POST", "/run", 400, 0.001, {"ok": False, "error": {"kind": "wire"}}
        )
        line = json.loads(capsys.readouterr().out)
        assert line["status"] == 400
        assert line["error_kind"] == "wire"

    def test_text_payload_logs_without_metrics(self, capsys):
        server = HttpServer.__new__(HttpServer)
        server.log_json = True
        server._access_log("GET", "/metrics", 200, 0.0005, "text body")
        line = json.loads(capsys.readouterr().out)
        assert line["path"] == "/metrics"
        assert "metrics" not in line

    def test_serve_arguments_accept_log_json(self):
        import argparse

        from repro.serve.http import add_serve_arguments

        parser = argparse.ArgumentParser()
        add_serve_arguments(parser)
        arguments = parser.parse_args(["--log-json"])
        assert arguments.log_json is True
        assert parser.parse_args([]).log_json is False
