"""The HTTP shell: routes, status codes, keep-alive, shutdown, loadgen client."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.orchestration.cache import ResultCache
from repro.run import RunSpec, Session, result_bytes
from repro.serve.http import HttpServer
from repro.serve.loadgen import LoadReport, ServeClient, dedup_spec, run_load
from repro.serve.service import RunService, decode_result_b64


@pytest.fixture
def server(tmp_path):
    """A live server on a free port, driven from a background event loop."""
    service = RunService(cache=ResultCache(tmp_path / "cache"))
    instance = HttpServer(service, host="127.0.0.1", port=0)
    started = threading.Event()
    loop_holder = {}

    def run_loop():
        loop = asyncio.new_event_loop()
        loop_holder["loop"] = loop
        asyncio.set_event_loop(loop)

        async def main():
            await instance.start()
            started.set()
            await instance.serve_until_stopped()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    assert started.wait(timeout=30)
    yield instance
    loop_holder["loop"].call_soon_threadsafe(instance.stop)
    thread.join(timeout=30)


def tree_payload(seed: int = 0) -> dict:
    return {
        "graph": {"kind": "family", "family": "random-tree", "params": {"n": 30}},
        "algorithm": "deterministic",
        "seed": seed,
    }


class TestRoutes:
    def test_healthz(self, server):
        client = ServeClient(port=server.port)
        status, body = client.get("/healthz")
        client.close()
        assert status == 200
        assert body["ok"] and body["service"] == "repro-serve"

    def test_capabilities(self, server):
        client = ServeClient(port=server.port)
        status, body = client.get("/capabilities")
        client.close()
        assert status == 200
        assert "deterministic" in body["capabilities"]["algorithms"]

    def test_unknown_route_is_404_listing_routes(self, server):
        client = ServeClient(port=server.port)
        status, body = client.get("/nope")
        client.close()
        assert status == 404
        assert "POST /run" in body["error"]["message"]

    def test_run_and_stats_over_one_keepalive_connection(self, server):
        client = ServeClient(port=server.port)
        status, first = client.run(tree_payload())
        assert status == 200 and first["metrics"]["cache"] == "miss"
        status, second = client.run(tree_payload())
        assert status == 200 and second["metrics"]["cache"] == "hit"
        status, stats = client.get("/stats")
        client.close()
        assert status == 200
        assert stats["stats"]["executions"] == 1
        assert stats["stats"]["cache_hits"] == 1

    def test_served_result_is_byte_identical_to_direct(self, server):
        payload = tree_payload(seed=4)
        client = ServeClient(port=server.port)
        _, body = client.run(payload)
        client.close()
        direct = Session().run(RunSpec.from_dict(payload))
        assert result_bytes(decode_result_b64(body["result_b64"])) == result_bytes(direct)

    def test_bad_json_body_is_400(self, server):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        connection.request("POST", "/run", body=b"{nope",
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        import json as json_module

        body = json_module.loads(response.read())
        connection.close()
        assert response.status == 400
        assert body["error"]["kind"] == "json"

    def test_wire_error_is_400_naming_field(self, server):
        client = ServeClient(port=server.port)
        status, body = client.run({"graph": {"kind": "family", "family": "nope"}})
        client.close()
        assert status == 400
        assert body["error"]["kind"] == "wire"
        assert body["error"]["field"] == "graph"

    def test_capability_error_is_422_with_cell(self, server):
        client = ServeClient(port=server.port)
        status, body = client.run(
            {
                "graph": {"kind": "csr", "n": 3, "edges": [[0, 1], [1, 2]]},
                "algorithm": "deterministic",
                "engine": "batched",
            }
        )
        client.close()
        assert status == 422
        assert body["error"]["cell"]["engine"] == "batched"


class TestLoadGenerator:
    def test_mixed_load_observes_hits_dedup_and_parity(self, server):
        report = run_load(
            port=server.port, seeds=2, repeats=2, dedup_clients=3, check_parity=True
        )
        assert report.errors == 0
        assert report.cache_hits >= 1
        assert report.inflight_joins + report.cache_hits >= 2
        assert report.parity_checked >= 5
        assert report.parity_failures == []
        assert report.rps > 0
        assert report.p99_ms >= report.p50_ms

    def test_report_counters_accumulate(self):
        report = LoadReport()
        report.record(200, {"ok": True, "metrics": {"cache": "hit"}}, 0.01)
        report.record(200, {"ok": True, "metrics": {"cache": "inflight"}}, 0.02)
        report.record(400, {"ok": False, "error": {"kind": "wire"}}, 0.005)
        assert report.cache_hits == 1
        assert report.inflight_joins == 1
        assert report.errors == 1
        assert len(report.latencies_ms) == 3

    def test_dedup_spec_is_wire_valid(self):
        RunSpec.from_dict(dedup_spec(n=50))


class TestShutdown:
    def test_shutdown_route_stops_the_server(self, tmp_path):
        service = RunService(cache=None)
        instance = HttpServer(service, host="127.0.0.1", port=0)
        finished = threading.Event()

        def run_loop():
            asyncio.run(_serve_once(instance))
            finished.set()

        async def _serve_once(target):
            await target.start()
            started.set()
            await target.serve_until_stopped()

        started = threading.Event()
        thread = threading.Thread(target=run_loop, daemon=True)
        thread.start()
        assert started.wait(timeout=30)
        client = ServeClient(port=instance.port)
        status, body = client.request("POST", "/shutdown")
        client.close()
        assert status == 200 and body["stopping"]
        assert finished.wait(timeout=30)
        thread.join(timeout=30)
