"""RunService: normalisation, caches, in-flight dedup, structured errors."""

from __future__ import annotations

import asyncio

import pytest

from repro.orchestration.cache import ResultCache
from repro.run import RunSpec, Session, result_bytes
from repro.serve.service import (
    RequestError,
    RunService,
    decode_result_b64,
    summarize_result,
)


def tree_payload(seed: int = 0, n: int = 30) -> dict:
    return {
        "graph": {"kind": "family", "family": "random-tree", "params": {"n": n}},
        "algorithm": "deterministic",
        "seed": seed,
    }


def run_sync(service: RunService, payload: dict) -> dict:
    return asyncio.run(service.run(payload))


@pytest.fixture
def service(tmp_path):
    instance = RunService(cache=ResultCache(tmp_path / "cache"), graph_capacity=2)
    yield instance
    instance.close()


class TestResponses:
    def test_envelope_shape(self, service):
        response = run_sync(service, tree_payload())
        assert response["ok"] is True
        assert response["result"]["size"] == len(response["result"]["dominating_set"])
        metrics = response["metrics"]
        assert metrics["cache"] == "miss"
        assert metrics["graph_cache"] == "miss"
        assert metrics["engine_used"] == response["result"]["engine_used"]
        assert metrics["rounds"] == response["result"]["rounds"]
        assert metrics["wall_time_s"] >= 0
        assert len(metrics["run_key"]) == 64

    def test_result_bytes_parity_with_direct_session(self, service):
        payload = tree_payload(seed=5)
        response = run_sync(service, payload)
        served = decode_result_b64(response["result_b64"])
        direct = Session().run(RunSpec.from_dict(payload))
        assert result_bytes(served) == result_bytes(direct)
        assert summarize_result(served) == summarize_result(direct)

    def test_sparse_and_explicit_payloads_share_one_run_key(self, service):
        sparse = tree_payload()
        explicit = RunSpec.from_dict(tree_payload()).to_dict()
        first = run_sync(service, sparse)
        second = run_sync(service, explicit)
        assert first["metrics"]["run_key"] == second["metrics"]["run_key"]
        assert second["metrics"]["cache"] == "hit"


class TestCaching:
    def test_repeat_is_a_cache_hit_with_identical_bytes(self, service):
        first = run_sync(service, tree_payload())
        second = run_sync(service, tree_payload())
        assert second["metrics"]["cache"] == "hit"
        assert second["result_b64"] == first["result_b64"]
        assert service.stats.executions == 1

    def test_cache_survives_service_restart(self, tmp_path):
        root = tmp_path / "cache"
        with RunService(cache=ResultCache(root)) as first:
            original = run_sync(first, tree_payload())
        with RunService(cache=ResultCache(root)) as second:
            revived = run_sync(second, tree_payload())
        assert revived["metrics"]["cache"] == "hit"
        assert revived["result_b64"] == original["result_b64"]
        assert second.stats.executions == 0

    def test_no_cache_service_recomputes(self):
        with RunService(cache=None) as service:
            run_sync(service, tree_payload())
            again = run_sync(service, tree_payload())
        assert again["metrics"]["cache"] == "miss"
        assert service.stats.executions == 2

    def test_different_seeds_are_different_entries(self, service):
        run_sync(service, tree_payload(seed=0))
        other = run_sync(service, tree_payload(seed=1))
        assert other["metrics"]["cache"] == "miss"


class TestGraphSharing:
    def test_same_graph_compiles_once(self, service):
        run_sync(service, tree_payload(seed=0))
        response = run_sync(service, tree_payload(seed=1))
        assert response["metrics"]["graph_cache"] == "hit"
        assert service.session.compiled_count == 1
        assert service.stats.graph_hits == 1

    def test_lru_eviction_invalidates_session(self, service):
        # Capacity is 2; a third distinct graph evicts the first.
        run_sync(service, tree_payload(seed=0, n=20))
        run_sync(service, tree_payload(seed=0, n=21))
        run_sync(service, tree_payload(seed=0, n=22))
        assert service.stats.graph_evictions == 1
        assert len(service._graphs) == 2
        assert service.session.compiled_count == 2


class TestInFlightDedup:
    def test_concurrent_identical_requests_execute_once(self, service):
        """Satellite 4: two concurrent clients, one execution, identical bytes."""
        payload = tree_payload(seed=9, n=60)

        async def race():
            return await asyncio.gather(
                service.run(dict(payload)), service.run(dict(payload))
            )

        first, second = asyncio.run(race())
        assert service.stats.executions == 1
        assert service.stats.inflight_joins == 1
        assert {first["metrics"]["cache"], second["metrics"]["cache"]} == {
            "miss",
            "inflight",
        }
        assert first["result_b64"] == second["result_b64"]
        direct = Session().run(RunSpec.from_dict(payload))
        assert result_bytes(decode_result_b64(first["result_b64"])) == result_bytes(direct)

    def test_joiners_see_the_executors_error(self):
        with RunService(cache=None) as service:
            payload = {
                "graph": {"kind": "csr", "n": 3, "edges": [[0, 1], [1, 2]]},
                "algorithm": "deterministic",
                "engine": "batched",  # CSR inputs are kernel-only -> capability error
            }

            async def race():
                results = await asyncio.gather(
                    service.run(dict(payload)),
                    service.run(dict(payload)),
                    return_exceptions=True,
                )
                return results

            outcomes = asyncio.run(race())
        assert all(isinstance(outcome, RequestError) for outcome in outcomes)
        assert service.stats.executions == 1
        assert all(outcome.status == 422 for outcome in outcomes)


class TestStructuredErrors:
    def test_bad_field_is_a_400_naming_it(self, service):
        with pytest.raises(RequestError) as caught:
            run_sync(service, {"graph": {"kind": "family", "family": "nope"}})
        assert caught.value.status == 400
        error = caught.value.body["error"]
        assert error["kind"] == "wire"
        assert error["field"] == "graph"
        assert "known graph famil" in error["message"]

    def test_unknown_key_is_a_400(self, service):
        payload = tree_payload()
        payload["sedd"] = 3
        with pytest.raises(RequestError) as caught:
            run_sync(service, payload)
        assert caught.value.status == 400
        assert caught.value.body["error"]["field"] == "sedd"

    def test_capability_cell_is_a_422_with_the_cell(self, service):
        payload = {
            "graph": {"kind": "csr", "n": 3, "edges": [[0, 1], [1, 2]]},
            "algorithm": "deterministic",
            "engine": "batched",
        }
        with pytest.raises(RequestError) as caught:
            run_sync(service, payload)
        assert caught.value.status == 422
        error = caught.value.body["error"]
        assert error["kind"] == "capability"
        assert error["cell"] == {
            "algorithm": "deterministic",
            "engine": "batched",
            "fault_model": None,
        }

    def test_errors_are_not_cached(self, service):
        payload = {
            "graph": {"kind": "csr", "n": 3, "edges": [[0, 1], [1, 2]]},
            "algorithm": "deterministic",
            "engine": "batched",
        }
        for _ in range(2):
            with pytest.raises(RequestError):
                run_sync(service, dict(payload))
        assert service.stats.executions == 2  # re-executed, never served from cache

    def test_stats_payload_shape(self, service):
        run_sync(service, tree_payload())
        payload = service.stats_payload()
        assert payload["ok"] is True
        assert payload["stats"]["executions"] == 1
        assert payload["compiled_graphs"] == 1
        assert "cache" in payload

    def test_capabilities_lists_wire_vocabulary(self, service):
        capabilities = service.capabilities()
        assert "deterministic" in capabilities["algorithms"]
        assert "kernel" in capabilities["engines"]
        assert "random-tree" in capabilities["graph_families"]
        assert "crash15" in capabilities["fault_models"]
        assert capabilities["wire_version"] == 1
